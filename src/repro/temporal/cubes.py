"""Guard normal form: the four-world cube algebra (paper Figure 3).

On a *maximal* trace, each base event ``e`` is, at any index, in
exactly one of four worlds:

========  =====================================================
``E_OCC``  ``e`` has occurred (``[]e`` holds)
``C_OCC``  the complement ``~e`` has occurred (``[]~e`` holds)
``P_E``    neither yet, and ``e`` will occur (``<>e | !e``)
``P_C``    neither yet, and ``~e`` will occur (``<>~e | !~e``)
========  =====================================================

Figure 3's table is precisely the truth of the six guard literals
``[]e, <>e, !e, []~e, <>~e, !~e`` as subsets of this domain:

* ``[]e  = {E_OCC}``            * ``[]~e = {C_OCC}``
* ``<>e  = {E_OCC, P_E}``       * ``<>~e = {C_OCC, P_C}``
* ``!e   = {C_OCC, P_E, P_C}``  * ``!~e  = {E_OCC, P_E, P_C}``

The truth of any conjunction of literals at a point depends only on
each base event's world, so a conjunction is a *cube* -- a mapping
from base events to 4-bit world masks -- and a guard is a union of
cubes (:class:`GuardExpr`).  Conjunction is per-event mask
intersection; all of Example 8's identities ((a)-(f)) hold by
construction; and equivalence/entailment of guards is decidable by
direct region comparison.

Worlds evolve over time only by ``P_E -> E_OCC`` and ``P_C -> C_OCC``;
``closure`` computes the future-reachable set of a mask, which is what
distinguishes *parked* (may become true) from *never* (permanently
false) during execution (Section 4.3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.algebra.symbols import Event
from repro.algebra.traces import Trace
from repro.temporal.formulas import (
    Always,
    Eventually,
    NotYet,
    TAtom,
    TChoice,
    TConj,
    TFormula,
    T_TOP,
    T_ZERO,
)

E_OCC = 1
C_OCC = 2
P_E = 4
P_C = 8
FULL = E_OCC | C_OCC | P_E | P_C
EMPTY = 0

#: Masks of the six guard literals on a *positive* base event.
BOX_MASK = E_OCC
BOX_COMP_MASK = C_OCC
DIA_MASK = E_OCC | P_E
DIA_COMP_MASK = C_OCC | P_C
NOTYET_MASK = C_OCC | P_E | P_C
NOTYET_COMP_MASK = E_OCC | P_E | P_C


def flip(mask: int) -> int:
    """Swap the roles of event and complement in a mask."""
    out = 0
    if mask & E_OCC:
        out |= C_OCC
    if mask & C_OCC:
        out |= E_OCC
    if mask & P_E:
        out |= P_C
    if mask & P_C:
        out |= P_E
    return out


def closure(mask: int) -> int:
    """Worlds reachable from ``mask`` as the trace extends.

    ``P_E`` may resolve to ``E_OCC`` and ``P_C`` to ``C_OCC``; occurred
    worlds are absorbing (stability, Semantics 7).
    """
    out = mask
    if mask & P_E:
        out |= E_OCC
    if mask & P_C:
        out |= C_OCC
    return out


_LITERAL_MASKS = {"box": BOX_MASK, "dia": DIA_MASK, "notyet": NOTYET_MASK}
_LITERAL_CACHE: dict = {}


def literal(kind: str, event: Event) -> "GuardExpr":
    """Build a single-literal guard: ``kind`` is ``box``/``dia``/``notyet``.

    The event may be a complement; the literal is stored against the
    positive base with a flipped mask.  Literals are pure values and
    synthesis requests the same ones over and over, so they are cached.

    >>> from repro.algebra.symbols import Event
    >>> literal("notyet", Event("f"))
    !f
    """
    key = (kind, event)
    found = _LITERAL_CACHE.get(key)
    if found is not None:
        return found
    mask = _LITERAL_MASKS.get(kind)
    if mask is None:
        raise ValueError(f"unknown literal kind: {kind!r}")
    if event.negated:
        mask = flip(mask)
    found = _canonical_guard(frozenset({((event.base, mask),)}))
    _LITERAL_CACHE[key] = found
    return found


Cube = tuple[tuple[Event, int], ...]


def _make_cube(entries: Mapping[Event, int]) -> Cube | None:
    """Canonicalize a cube; ``None`` means the empty (false) cube."""
    items = []
    for base, mask in entries.items():
        if mask == EMPTY:
            return None
        if mask != FULL:
            items.append((base, mask))
    items.sort(key=lambda item: item[0].sort_key())
    return tuple(items)


class GuardExpr:
    """A guard as a union of cubes over the four-world domain.

    The public constructors are :func:`literal`, :data:`TRUE_GUARD`,
    :data:`FALSE_GUARD`, and the ``&`` / ``|`` operators (conjunction
    and disjunction as in the paper's ``|`` and ``+``).  Instances are
    immutable and canonical enough for equality to imply semantic
    equality (full semantic equality is :meth:`equivalent`).
    """

    __slots__ = ("cubes", "_hash", "_bases", "_sbases")

    def __init__(self, cubes: frozenset[Cube]):
        object.__setattr__(self, "cubes", _absorb(cubes))
        object.__setattr__(self, "_hash", None)
        object.__setattr__(self, "_bases", None)
        object.__setattr__(self, "_sbases", None)

    def __setattr__(self, key, value):  # pragma: no cover
        raise AttributeError("GuardExpr is immutable")

    # -- predicates ---------------------------------------------------

    @property
    def is_true(self) -> bool:
        return self.cubes == frozenset({()})

    @property
    def is_false(self) -> bool:
        return not self.cubes

    def bases(self) -> frozenset[Event]:
        cached = self._bases
        if cached is None:
            cached = frozenset(base for cube in self.cubes for base, _ in cube)
            object.__setattr__(self, "_bases", cached)
        return cached

    def _sorted_bases(self) -> tuple[Event, ...]:
        cached = self._sbases
        if cached is None:
            cached = tuple(sorted(self.bases(), key=Event.sort_key))
            object.__setattr__(self, "_sbases", cached)
        return cached

    # -- boolean algebra ----------------------------------------------

    def __and__(self, other: "GuardExpr") -> "GuardExpr":
        # Exact short-circuits: 0 annihilates, T is the unit, and the
        # product of a canonical set with itself is itself (idempotent,
        # and ``_absorb`` of a canonical set is the identity).
        if not self.cubes or not other.cubes:
            return FALSE_GUARD
        if () in self.cubes:
            return other
        if () in other.cubes:
            return self
        if self.cubes == other.cubes:
            return self
        if len(self.cubes) == 1 and len(other.cubes) == 1:
            # the product of two cubes is one cube (or dead), already
            # canonical -- identical to the general path, absorb-free
            (left,) = self.cubes
            (right,) = other.cubes
            cube = _cube_product(left, right)
            if cube is None:
                return FALSE_GUARD
            return _canonical_guard(frozenset({cube}))
        out: set[Cube] = set()
        for left in self.cubes:
            for right in other.cubes:
                cube = _cube_product(left, right)
                if cube is not None:
                    out.add(cube)
        return GuardExpr(frozenset(out))

    def __or__(self, other: "GuardExpr") -> "GuardExpr":
        # Exact short-circuits: 0 is the unit, T absorbs, and when one
        # canonical cube set contains the other, absorption of the
        # union returns the larger set unchanged.
        if not self.cubes:
            return other
        if not other.cubes:
            return self
        if () in self.cubes or () in other.cubes:
            return TRUE_GUARD
        if self.cubes >= other.cubes:
            return self
        if other.cubes >= self.cubes:
            return other
        return GuardExpr(self.cubes | other.cubes)

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        return isinstance(other, GuardExpr) and other.cubes == self.cubes

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash(("GuardExpr", self.cubes))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- semantics ----------------------------------------------------

    def holds_at(self, trace: Trace, index: int) -> bool:
        """Evaluate the guard at a point of a maximal trace.

        Each base of a maximal trace has exactly one world at the
        point, so a nonzero mask intersection means membership.  Bases
        the guard mentions but the trace never settles would make the
        trace non-maximal; they evaluate as outside every literal.
        """
        worlds = worlds_at(trace, index)
        return _point_in(self.cubes, worlds)

    def region_subsumes(self, knowledge: Mapping[Event, int]) -> bool:
        """Is every world combination allowed by ``knowledge`` inside the guard?

        ``knowledge`` maps base events to the set of worlds they might
        currently be in (bases absent from the map are unconstrained).
        This is the "guard is certainly true now" test of Section 4.3.
        """
        if not self.cubes:
            return False
        if () in self.cubes:
            return True
        return _subset_check(self.cubes, list(self._sorted_bases()), knowledge)

    def possible_under(self, knowledge: Mapping[Event, int]) -> bool:
        """Can the guard still become true, given knowledge closures?

        False means the guard is *permanently* false: the event can
        never occur (its actor should reject attempts outright rather
        than park them).
        """
        for cube in self.cubes:
            if all(
                closure(knowledge.get(base, FULL)) & mask for base, mask in cube
            ):
                return True
        return False

    def simplify_under(self, knowledge: Mapping[Event, int]) -> "GuardExpr":
        """Assimilate knowledge: the paper's proof rules of Section 4.3.

        Receiving ``[]f`` sets knowledge ``{E_OCC}`` for ``f``: any
        literal whose mask covers the closure becomes ``T`` (dropped
        from its cube) and any literal whose mask misses the closure
        kills its cube -- exactly "``[]e`` reduces ``[]e``/``<>e`` to
        ``T`` and ``!e`` to ``0``; ``[]e``/``<>e`` reduce to ``0`` and
        ``!e`` to ``T`` when ``[]~e`` or ``<>~e`` is received; ``[]e``
        and ``!e`` are unaffected by ``<>e``".

        Memoized on ``(guard, knowledge)``: actors re-simplify their
        guard on every assimilated fact, and distributed instances of
        the same workflow shape pass through the same (guard,
        knowledge) states, so the hit rate is high.
        """
        if not knowledge or not self.cubes or () in self.cubes:
            return self
        key = (self, tuple(sorted(knowledge.items(), key=_knowledge_sort)))
        cached = _SIMPLIFY_CACHE.get(key)
        if cached is not None:
            _SimplifyStats.hits += 1
            return cached
        _SimplifyStats.misses += 1
        out: set[Cube] = set()
        for cube in self.cubes:
            entries: dict[Event, int] = {}
            dead = False
            for base, mask in cube:
                known = knowledge.get(base)
                if known is None:
                    entries[base] = mask
                    continue
                reach = closure(known)
                if reach & mask == 0:
                    dead = True
                    break
                if reach & mask != reach:
                    entries[base] = mask
                # else: the literal is guaranteed from now on -> T.
            if dead:
                continue
            cube2 = _make_cube(entries)
            if cube2 is not None:
                out.add(cube2)
        result = GuardExpr(frozenset(out))
        if len(_SIMPLIFY_CACHE) >= _SIMPLIFY_LIMIT:
            _SIMPLIFY_CACHE.clear()
        _SIMPLIFY_CACHE[key] = result
        return result

    def rename(self, mapping: Mapping[Event, Event]) -> "GuardExpr":
        """Substitute base events through ``mapping`` (positive bases on
        both sides; bases absent from the map are kept).

        This is the template-instantiation fast path: stamping out the
        guards of a suffixed workflow instance costs one pass over the
        cubes instead of a fresh synthesis.  For an *injective* map the
        result skips re-absorption: subsumption and one-difference
        merging depend only on base identity and masks, so a cube set
        at the ``_absorb`` fixpoint stays at the fixpoint under any
        injective renaming.  A non-injective map can collide two bases
        inside one cube; colliding masks intersect (the conjunctive
        reading) and the result is re-canonicalized.
        """
        if not self.cubes or () in self.cubes or not mapping:
            return self
        renamed: set[Cube] = set()
        collided = False
        for cube in self.cubes:
            entries: dict[Event, int] = {}
            for base, mask in cube:
                target = mapping.get(base, base)
                prior = entries.get(target)
                if prior is None:
                    entries[target] = mask
                else:
                    collided = True
                    entries[target] = prior & mask
            cube2 = _make_cube(entries)
            if cube2 is not None:
                renamed.add(cube2)
        if collided:
            return GuardExpr(frozenset(renamed))
        return _canonical_guard(frozenset(renamed))

    def equivalent(self, other: "GuardExpr") -> bool:
        """Exact region equality over the union of mentioned bases."""
        bases = sorted(self.bases() | other.bases(), key=Event.sort_key)
        return _regions_equal(self.cubes, other.cubes, bases)

    def entails(self, other: "GuardExpr") -> bool:
        bases = sorted(self.bases() | other.bases(), key=Event.sort_key)
        for worlds in _world_points(bases):
            if _point_in(self.cubes, worlds) and not _point_in(other.cubes, worlds):
                return False
        return True

    # -- conversion / display ------------------------------------------

    def to_formula(self) -> TFormula:
        """Render as a ``T`` formula for the exact-semantics checker."""
        if self.is_false:
            return T_ZERO
        if self.is_true:
            return T_TOP
        return TChoice.of(
            [
                TConj.of([_mask_formula(base, mask) for base, mask in cube])
                for cube in sorted(self.cubes)
            ]
        )

    def __repr__(self) -> str:
        if self.is_false:
            return "0"
        if self.is_true:
            return "T"
        rendered = []
        for cube in sorted(self.cubes):
            parts = [_mask_text(base, mask) for base, mask in cube]
            text = " | ".join(parts)
            rendered.append(f"({text})" if len(parts) > 1 else text)
        return " + ".join(rendered)

    def cube_count(self) -> int:
        return len(self.cubes)

    def literal_count(self) -> int:
        return sum(len(cube) for cube in self.cubes)


def _canonical_guard(cubes: frozenset[Cube]) -> GuardExpr:
    """Build a :class:`GuardExpr` from an already-canonical cube set,
    skipping ``_absorb`` (callers guarantee a fixpoint, e.g. a single
    non-empty cube)."""
    self = object.__new__(GuardExpr)
    object.__setattr__(self, "cubes", cubes)
    object.__setattr__(self, "_hash", None)
    object.__setattr__(self, "_bases", None)
    object.__setattr__(self, "_sbases", None)
    return self


def _knowledge_sort(item: tuple[Event, int]) -> tuple:
    return item[0].sort_key()


_SIMPLIFY_CACHE: dict = {}
_SIMPLIFY_LIMIT = 65536


class _SimplifyStats:
    hits = 0
    misses = 0


def simplify_cache_stats() -> dict:
    """Hit/miss counters of the ``simplify_under`` memo table."""
    return {
        "size": len(_SIMPLIFY_CACHE),
        "hits": _SimplifyStats.hits,
        "misses": _SimplifyStats.misses,
    }


def clear_simplify_cache() -> None:
    _SIMPLIFY_CACHE.clear()
    _SimplifyStats.hits = 0
    _SimplifyStats.misses = 0
    _LITERAL_CACHE.clear()


def guard_or(items: Iterable[GuardExpr]) -> GuardExpr:
    out = FALSE_GUARD
    for item in items:
        out = out | item
    return out


def guard_and(items: Iterable[GuardExpr]) -> GuardExpr:
    out = TRUE_GUARD
    for item in items:
        out = out & item
    return out


# -- internals ---------------------------------------------------------


def _absorb(cubes: frozenset[Cube]) -> frozenset[Cube]:
    """Drop subsumed cubes and merge cubes differing in one event only.

    Runs the absorption/merge passes to a fixpoint over a sorted view,
    so the result is deterministic.  The pairwise primitives walk the
    sorted cube tuples directly (two pointers) instead of building dict
    views; the pass structure -- and therefore the fixpoint reached --
    is unchanged.
    """
    work = set(cubes)
    if () in work:
        return frozenset({()})
    if len(work) <= 1:
        return frozenset(work)
    changed = True
    while changed:
        changed = False
        items = sorted(work)
        # absorption: cube A subsumed by cube B when B's region contains A's
        for a in items:
            if a not in work:
                continue
            for b in items:
                if a is b or b not in work:
                    continue
                # b's region can only contain a's when b constrains a
                # subset of a's bases (a missing base reads as FULL)
                if len(b) > len(a):
                    continue
                if _cube_subsumes(b, a):
                    work.discard(a)
                    changed = True
                    break
        # merge: identical support except one base -> union that mask
        items = sorted(work)
        for i, a in enumerate(items):
            if a not in work:
                continue
            for b in items[i + 1:]:
                if b not in work:
                    continue
                # at most one differing key bounds the support sizes
                if len(a) - len(b) > 1 or len(b) - len(a) > 1:
                    continue
                merged = _cube_merge(a, b)
                if merged is not None and merged != a and merged != b:
                    work.discard(a)
                    work.discard(b)
                    work.add(merged)
                    changed = True
                    break
            else:
                continue
            break
        if () in work:
            return frozenset({()})
    return frozenset(work)


def _cube_product(left: Cube, right: Cube) -> Cube | None:
    """Intersect two canonical cubes; ``None`` when the result is empty.

    A merge-join over the sorted entries: shared bases intersect their
    masks (an ``EMPTY`` intersection kills the cube), one-sided bases
    carry over.  Masks never become ``FULL`` (both inputs store only
    non-``FULL`` masks and intersection only shrinks), so the result is
    canonical without re-sorting.
    """
    if not left:
        return right
    if not right:
        return left
    out: list[tuple[Event, int]] = []
    i = j = 0
    nl, nr = len(left), len(right)
    while i < nl and j < nr:
        bl, ml = left[i]
        br, mr = right[j]
        if bl is br or bl == br:
            combined = ml & mr
            if combined == EMPTY:
                return None
            out.append((bl, combined))
            i += 1
            j += 1
        elif bl.sort_key() < br.sort_key():
            out.append(left[i])
            i += 1
        else:
            out.append(right[j])
            j += 1
    out.extend(left[i:])
    out.extend(right[j:])
    return tuple(out)


def _cube_subsumes(big: Cube, small: Cube) -> bool:
    """True when ``big``'s region contains ``small``'s region.

    Requires ``small``'s mask within ``big``'s for every base ``big``
    constrains (a base missing from ``small`` reads as ``FULL`` and
    always escapes a non-``FULL`` constraint)."""
    j = 0
    ns = len(small)
    for base, mask in big:
        key = base.sort_key()
        while j < ns and small[j][0].sort_key() < key:
            j += 1
        if j >= ns or small[j][0] != base:
            return False
        if small[j][1] & ~mask & FULL:
            return False
        j += 1
    return True


def _cube_merge(a: Cube, b: Cube) -> Cube | None:
    """Union two cubes when they differ in at most one base's mask.

    A base present on one side only counts as a difference against the
    other side's implicit ``FULL``; the merged mask is then ``FULL``
    and drops out of the cube."""
    out: list[tuple[Event, int]] = []
    diffs = 0
    i = j = 0
    na, nb = len(a), len(b)
    while i < na and j < nb:
        ba, ma = a[i]
        bb, mb = b[j]
        if ba is bb or ba == bb:
            if ma == mb:
                out.append((ba, ma))
            else:
                diffs += 1
                if diffs > 1:
                    return None
                union = ma | mb
                if union != FULL:
                    out.append((ba, union))
            i += 1
            j += 1
        elif ba.sort_key() < bb.sort_key():
            diffs += 1
            if diffs > 1:
                return None
            i += 1  # union with implicit FULL -> unconstrained
        else:
            diffs += 1
            if diffs > 1:
                return None
            j += 1
    diffs += (na - i) + (nb - j)
    if diffs > 1:
        return None
    if diffs == 0:
        return a
    return tuple(out)


def _point_in(cubes: frozenset[Cube], worlds: Mapping[Event, int]) -> bool:
    return any(
        all(worlds.get(base, 0) & mask for base, mask in cube) for cube in cubes
    )


def _world_points(bases: list[Event]) -> Iterator[dict[Event, int]]:
    if not bases:
        yield {}
        return
    head, rest = bases[0], bases[1:]
    for sub in _world_points(rest):
        for world in (E_OCC, C_OCC, P_E, P_C):
            point = dict(sub)
            point[head] = world
            yield point


def _regions_equal(left: frozenset[Cube], right: frozenset[Cube], bases) -> bool:
    for worlds in _world_points(list(bases)):
        if _point_in(left, worlds) != _point_in(right, worlds):
            return False
    return True


def _subset_check(cubes: frozenset[Cube], bases: list[Event], knowledge) -> bool:
    """Every world point consistent with ``knowledge`` is inside the union."""
    if not cubes:
        return False
    if () in cubes:
        return True
    for worlds in _world_points(bases):
        consistent = all(
            worlds[base] & knowledge.get(base, FULL) for base in bases
        )
        if consistent and not _point_in(cubes, worlds):
            return False
    return True


def worlds_at(trace: Trace, index: int) -> dict[Event, int]:
    """The world of every base event of a maximal trace at ``index``."""
    worlds: dict[Event, int] = {}
    for pos, event in enumerate(trace.events):
        occurred = pos < index
        if event.negated:
            worlds[event.base] = C_OCC if occurred else P_C
        else:
            worlds[event.base] = E_OCC if occurred else P_E
    return worlds


_MASK_TEXT = {
    EMPTY: "0",
    E_OCC: "[]{e}",
    C_OCC: "[]~{e}",
    E_OCC | C_OCC: "([]{e} + []~{e})",
    P_E: "(<>{e} | !{e})",
    E_OCC | P_E: "<>{e}",
    C_OCC | P_E: "([]~{e} + (<>{e} | !{e}))",
    E_OCC | C_OCC | P_E: "([]~{e} + <>{e})",
    P_C: "(<>~{e} | !~{e})",
    E_OCC | P_C: "([]{e} + (<>~{e} | !~{e}))",
    C_OCC | P_C: "<>~{e}",
    E_OCC | C_OCC | P_C: "([]{e} + <>~{e})",
    P_E | P_C: "(!{e} | !~{e})",
    E_OCC | P_E | P_C: "!~{e}",
    C_OCC | P_E | P_C: "!{e}",
    FULL: "T",
}


def _mask_text(base: Event, mask: int) -> str:
    return _MASK_TEXT[mask].format(e=repr(base))


def mask_text(name: str, mask: int) -> str:
    """Render the literal ``world(name) in mask`` in guard syntax.

    Like the internal :func:`_mask_text` but over a plain event *name*,
    so offline tooling (trace-based provenance) can render literals
    without reconstructing :class:`~repro.algebra.symbols.Event`
    objects."""
    return _MASK_TEXT[mask].format(e=name)


def classify_mask(known: int, mask: int) -> str:
    """Status of the literal ``mask`` under the knowledge mask ``known``.

    The literal-level evaluation rule behind Section 4.3's verdicts:

    * ``"satisfied"`` -- every world reachable from ``known`` (its
      :func:`closure`) lies inside ``mask``: the literal holds now and
      forever, no further announcement can unmake it;
    * ``"blocked"`` -- no reachable world lies inside ``mask``: the
      literal can never hold again;
    * ``"pending"`` -- some but not all reachable worlds are inside:
      future announcements decide it.

    A cube fires exactly when all its literals are satisfied, and is
    dead exactly when any literal is blocked, so this is the atom the
    provenance engine's explanations are built from.
    """
    reach = closure(known)
    if reach & mask == 0:
        return "blocked"
    if reach & ~mask & FULL == 0:
        return "satisfied"
    return "pending"


def _mask_formula(base: Event, mask: int) -> TFormula:
    """The exact ``T`` formula denoting ``world(base) in mask``."""
    atom = TAtom(base)
    comp = TAtom(base.complement)
    pieces = {
        E_OCC: Always(atom),
        C_OCC: Always(comp),
        P_E: TConj.of([Eventually(atom), NotYet(atom)]),
        P_C: TConj.of([Eventually(comp), NotYet(comp)]),
    }
    selected = [piece for bit, piece in pieces.items() if mask & bit]
    if not selected:
        return T_ZERO
    if len(selected) == 4:
        return T_TOP
    return TChoice.of(selected)


#: The guard ``T`` (one empty cube: every world point is inside).
TRUE_GUARD = GuardExpr(frozenset({()}))

#: The guard ``0`` (no cube: no world point is inside).
FALSE_GUARD = GuardExpr(frozenset())

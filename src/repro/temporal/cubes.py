"""Guard normal form: the four-world cube algebra (paper Figure 3).

On a *maximal* trace, each base event ``e`` is, at any index, in
exactly one of four worlds:

========  =====================================================
``E_OCC``  ``e`` has occurred (``[]e`` holds)
``C_OCC``  the complement ``~e`` has occurred (``[]~e`` holds)
``P_E``    neither yet, and ``e`` will occur (``<>e | !e``)
``P_C``    neither yet, and ``~e`` will occur (``<>~e | !~e``)
========  =====================================================

Figure 3's table is precisely the truth of the six guard literals
``[]e, <>e, !e, []~e, <>~e, !~e`` as subsets of this domain:

* ``[]e  = {E_OCC}``            * ``[]~e = {C_OCC}``
* ``<>e  = {E_OCC, P_E}``       * ``<>~e = {C_OCC, P_C}``
* ``!e   = {C_OCC, P_E, P_C}``  * ``!~e  = {E_OCC, P_E, P_C}``

The truth of any conjunction of literals at a point depends only on
each base event's world, so a conjunction is a *cube* -- a mapping
from base events to 4-bit world masks -- and a guard is a union of
cubes (:class:`GuardExpr`).  Conjunction is per-event mask
intersection; all of Example 8's identities ((a)-(f)) hold by
construction; and equivalence/entailment of guards is decidable by
direct region comparison.

Worlds evolve over time only by ``P_E -> E_OCC`` and ``P_C -> C_OCC``;
``closure`` computes the future-reachable set of a mask, which is what
distinguishes *parked* (may become true) from *never* (permanently
false) during execution (Section 4.3).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping

from repro.algebra.symbols import Event
from repro.algebra.traces import Trace
from repro.temporal.formulas import (
    Always,
    Eventually,
    NotYet,
    TAtom,
    TChoice,
    TConj,
    TFormula,
    T_TOP,
    T_ZERO,
)

E_OCC = 1
C_OCC = 2
P_E = 4
P_C = 8
FULL = E_OCC | C_OCC | P_E | P_C
EMPTY = 0

#: Masks of the six guard literals on a *positive* base event.
BOX_MASK = E_OCC
BOX_COMP_MASK = C_OCC
DIA_MASK = E_OCC | P_E
DIA_COMP_MASK = C_OCC | P_C
NOTYET_MASK = C_OCC | P_E | P_C
NOTYET_COMP_MASK = E_OCC | P_E | P_C


def flip(mask: int) -> int:
    """Swap the roles of event and complement in a mask."""
    out = 0
    if mask & E_OCC:
        out |= C_OCC
    if mask & C_OCC:
        out |= E_OCC
    if mask & P_E:
        out |= P_C
    if mask & P_C:
        out |= P_E
    return out


def closure(mask: int) -> int:
    """Worlds reachable from ``mask`` as the trace extends.

    ``P_E`` may resolve to ``E_OCC`` and ``P_C`` to ``C_OCC``; occurred
    worlds are absorbing (stability, Semantics 7).
    """
    out = mask
    if mask & P_E:
        out |= E_OCC
    if mask & P_C:
        out |= C_OCC
    return out


def literal(kind: str, event: Event) -> "GuardExpr":
    """Build a single-literal guard: ``kind`` is ``box``/``dia``/``notyet``.

    The event may be a complement; the literal is stored against the
    positive base with a flipped mask.

    >>> from repro.algebra.symbols import Event
    >>> literal("notyet", Event("f"))
    !f
    """
    masks = {"box": BOX_MASK, "dia": DIA_MASK, "notyet": NOTYET_MASK}
    if kind not in masks:
        raise ValueError(f"unknown literal kind: {kind!r}")
    mask = masks[kind]
    if event.negated:
        mask = flip(mask)
    return GuardExpr(frozenset({((event.base, mask),)}))


Cube = tuple[tuple[Event, int], ...]


def _make_cube(entries: Mapping[Event, int]) -> Cube | None:
    """Canonicalize a cube; ``None`` means the empty (false) cube."""
    items = []
    for base, mask in entries.items():
        if mask == EMPTY:
            return None
        if mask != FULL:
            items.append((base, mask))
    items.sort(key=lambda item: item[0].sort_key())
    return tuple(items)


class GuardExpr:
    """A guard as a union of cubes over the four-world domain.

    The public constructors are :func:`literal`, :data:`TRUE_GUARD`,
    :data:`FALSE_GUARD`, and the ``&`` / ``|`` operators (conjunction
    and disjunction as in the paper's ``|`` and ``+``).  Instances are
    immutable and canonical enough for equality to imply semantic
    equality (full semantic equality is :meth:`equivalent`).
    """

    __slots__ = ("cubes",)

    def __init__(self, cubes: frozenset[Cube]):
        object.__setattr__(self, "cubes", _absorb(cubes))

    def __setattr__(self, key, value):  # pragma: no cover
        raise AttributeError("GuardExpr is immutable")

    # -- predicates ---------------------------------------------------

    @property
    def is_true(self) -> bool:
        return self.cubes == frozenset({()})

    @property
    def is_false(self) -> bool:
        return not self.cubes

    def bases(self) -> frozenset[Event]:
        return frozenset(base for cube in self.cubes for base, _ in cube)

    # -- boolean algebra ----------------------------------------------

    def __and__(self, other: "GuardExpr") -> "GuardExpr":
        out: set[Cube] = set()
        for left in self.cubes:
            left_map = dict(left)
            for right in other.cubes:
                merged = dict(left_map)
                dead = False
                for base, mask in right:
                    combined = merged.get(base, FULL) & mask
                    if combined == EMPTY:
                        dead = True
                        break
                    merged[base] = combined
                if dead:
                    continue
                cube = _make_cube(merged)
                if cube is not None:
                    out.add(cube)
        return GuardExpr(frozenset(out))

    def __or__(self, other: "GuardExpr") -> "GuardExpr":
        return GuardExpr(self.cubes | other.cubes)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, GuardExpr) and other.cubes == self.cubes

    def __hash__(self) -> int:
        return hash(("GuardExpr", self.cubes))

    # -- semantics ----------------------------------------------------

    def holds_at(self, trace: Trace, index: int) -> bool:
        """Evaluate the guard at a point of a maximal trace.

        Each base of a maximal trace has exactly one world at the
        point, so a nonzero mask intersection means membership.  Bases
        the guard mentions but the trace never settles would make the
        trace non-maximal; they evaluate as outside every literal.
        """
        worlds = worlds_at(trace, index)
        return _point_in(self.cubes, worlds)

    def region_subsumes(self, knowledge: Mapping[Event, int]) -> bool:
        """Is every world combination allowed by ``knowledge`` inside the guard?

        ``knowledge`` maps base events to the set of worlds they might
        currently be in (bases absent from the map are unconstrained).
        This is the "guard is certainly true now" test of Section 4.3.
        """
        bases = set(self.bases())
        constrained = {b: m for b, m in knowledge.items()}
        return _subset_check(self.cubes, sorted(bases, key=Event.sort_key), constrained)

    def possible_under(self, knowledge: Mapping[Event, int]) -> bool:
        """Can the guard still become true, given knowledge closures?

        False means the guard is *permanently* false: the event can
        never occur (its actor should reject attempts outright rather
        than park them).
        """
        for cube in self.cubes:
            if all(
                closure(knowledge.get(base, FULL)) & mask for base, mask in cube
            ):
                return True
        return False

    def simplify_under(self, knowledge: Mapping[Event, int]) -> "GuardExpr":
        """Assimilate knowledge: the paper's proof rules of Section 4.3.

        Receiving ``[]f`` sets knowledge ``{E_OCC}`` for ``f``: any
        literal whose mask covers the closure becomes ``T`` (dropped
        from its cube) and any literal whose mask misses the closure
        kills its cube -- exactly "``[]e`` reduces ``[]e``/``<>e`` to
        ``T`` and ``!e`` to ``0``; ``[]e``/``<>e`` reduce to ``0`` and
        ``!e`` to ``T`` when ``[]~e`` or ``<>~e`` is received; ``[]e``
        and ``!e`` are unaffected by ``<>e``".
        """
        out: set[Cube] = set()
        for cube in self.cubes:
            entries: dict[Event, int] = {}
            dead = False
            for base, mask in cube:
                known = knowledge.get(base)
                if known is None:
                    entries[base] = mask
                    continue
                reach = closure(known)
                if reach & mask == 0:
                    dead = True
                    break
                if reach & mask != reach:
                    entries[base] = mask
                # else: the literal is guaranteed from now on -> T.
            if dead:
                continue
            cube2 = _make_cube(entries)
            if cube2 is not None:
                out.add(cube2)
        return GuardExpr(frozenset(out))

    def equivalent(self, other: "GuardExpr") -> bool:
        """Exact region equality over the union of mentioned bases."""
        bases = sorted(self.bases() | other.bases(), key=Event.sort_key)
        return _regions_equal(self.cubes, other.cubes, bases)

    def entails(self, other: "GuardExpr") -> bool:
        bases = sorted(self.bases() | other.bases(), key=Event.sort_key)
        for worlds in _world_points(bases):
            if _point_in(self.cubes, worlds) and not _point_in(other.cubes, worlds):
                return False
        return True

    # -- conversion / display ------------------------------------------

    def to_formula(self) -> TFormula:
        """Render as a ``T`` formula for the exact-semantics checker."""
        if self.is_false:
            return T_ZERO
        if self.is_true:
            return T_TOP
        return TChoice.of(
            [
                TConj.of([_mask_formula(base, mask) for base, mask in cube])
                for cube in sorted(self.cubes)
            ]
        )

    def __repr__(self) -> str:
        if self.is_false:
            return "0"
        if self.is_true:
            return "T"
        rendered = []
        for cube in sorted(self.cubes):
            parts = [_mask_text(base, mask) for base, mask in cube]
            text = " | ".join(parts)
            rendered.append(f"({text})" if len(parts) > 1 else text)
        return " + ".join(rendered)

    def cube_count(self) -> int:
        return len(self.cubes)

    def literal_count(self) -> int:
        return sum(len(cube) for cube in self.cubes)


def guard_or(items: Iterable[GuardExpr]) -> GuardExpr:
    out = FALSE_GUARD
    for item in items:
        out = out | item
    return out


def guard_and(items: Iterable[GuardExpr]) -> GuardExpr:
    out = TRUE_GUARD
    for item in items:
        out = out & item
    return out


# -- internals ---------------------------------------------------------


def _absorb(cubes: frozenset[Cube]) -> frozenset[Cube]:
    """Drop subsumed cubes and merge cubes differing in one event only."""
    work = set(cubes)
    if () in work:
        return frozenset({()})
    changed = True
    while changed:
        changed = False
        items = sorted(work)
        # absorption: cube A subsumed by cube B when B's region contains A's
        for a in items:
            if a not in work:
                continue
            for b in items:
                if a is b or b not in work:
                    continue
                if _cube_subsumes(b, a):
                    work.discard(a)
                    changed = True
                    break
        # merge: identical support except one base -> union that mask
        items = sorted(work)
        for i, a in enumerate(items):
            if a not in work:
                continue
            for b in items[i + 1:]:
                if b not in work:
                    continue
                merged = _cube_merge(a, b)
                if merged is not None and merged != a and merged != b:
                    work.discard(a)
                    work.discard(b)
                    work.add(merged)
                    changed = True
                    break
            else:
                continue
            break
        if () in work:
            return frozenset({()})
    return frozenset(work)


def _cube_subsumes(big: Cube, small: Cube) -> bool:
    """True when ``big``'s region contains ``small``'s region."""
    big_map = dict(big)
    small_map = dict(small)
    for base, mask in big_map.items():
        if small_map.get(base, FULL) & ~mask & FULL:
            return False
    return True


def _cube_merge(a: Cube, b: Cube) -> Cube | None:
    """Union two cubes when they differ in at most one base's mask."""
    a_map, b_map = dict(a), dict(b)
    keys = set(a_map) | set(b_map)
    diff_key = None
    for key in keys:
        if a_map.get(key, FULL) != b_map.get(key, FULL):
            if diff_key is not None:
                return None
            diff_key = key
    if diff_key is None:
        return a
    merged = dict(a_map)
    merged[diff_key] = a_map.get(diff_key, FULL) | b_map.get(diff_key, FULL)
    return _make_cube(merged)


def _point_in(cubes: frozenset[Cube], worlds: Mapping[Event, int]) -> bool:
    return any(
        all(worlds.get(base, 0) & mask for base, mask in cube) for cube in cubes
    )


def _world_points(bases: list[Event]) -> Iterator[dict[Event, int]]:
    if not bases:
        yield {}
        return
    head, rest = bases[0], bases[1:]
    for sub in _world_points(rest):
        for world in (E_OCC, C_OCC, P_E, P_C):
            point = dict(sub)
            point[head] = world
            yield point


def _regions_equal(left: frozenset[Cube], right: frozenset[Cube], bases) -> bool:
    for worlds in _world_points(list(bases)):
        if _point_in(left, worlds) != _point_in(right, worlds):
            return False
    return True


def _subset_check(cubes: frozenset[Cube], bases: list[Event], knowledge) -> bool:
    """Every world point consistent with ``knowledge`` is inside the union."""
    if not cubes:
        return False
    if () in cubes:
        return True
    for worlds in _world_points(bases):
        consistent = all(
            worlds[base] & knowledge.get(base, FULL) for base in bases
        )
        if consistent and not _point_in(cubes, worlds):
            return False
    return True


def worlds_at(trace: Trace, index: int) -> dict[Event, int]:
    """The world of every base event of a maximal trace at ``index``."""
    worlds: dict[Event, int] = {}
    for pos, event in enumerate(trace.events):
        occurred = pos < index
        if event.negated:
            worlds[event.base] = C_OCC if occurred else P_C
        else:
            worlds[event.base] = E_OCC if occurred else P_E
    return worlds


_MASK_TEXT = {
    EMPTY: "0",
    E_OCC: "[]{e}",
    C_OCC: "[]~{e}",
    E_OCC | C_OCC: "([]{e} + []~{e})",
    P_E: "(<>{e} | !{e})",
    E_OCC | P_E: "<>{e}",
    C_OCC | P_E: "([]~{e} + (<>{e} | !{e}))",
    E_OCC | C_OCC | P_E: "([]~{e} + <>{e})",
    P_C: "(<>~{e} | !~{e})",
    E_OCC | P_C: "([]{e} + (<>~{e} | !~{e}))",
    C_OCC | P_C: "<>~{e}",
    E_OCC | C_OCC | P_C: "([]{e} + <>~{e})",
    P_E | P_C: "(!{e} | !~{e})",
    E_OCC | P_E | P_C: "!~{e}",
    C_OCC | P_E | P_C: "!{e}",
    FULL: "T",
}


def _mask_text(base: Event, mask: int) -> str:
    return _MASK_TEXT[mask].format(e=repr(base))


def _mask_formula(base: Event, mask: int) -> TFormula:
    """The exact ``T`` formula denoting ``world(base) in mask``."""
    atom = TAtom(base)
    comp = TAtom(base.complement)
    pieces = {
        E_OCC: Always(atom),
        C_OCC: Always(comp),
        P_E: TConj.of([Eventually(atom), NotYet(atom)]),
        P_C: TConj.of([Eventually(comp), NotYet(comp)]),
    }
    selected = [piece for bit, piece in pieces.items() if mask & bit]
    if not selected:
        return T_ZERO
    if len(selected) == 4:
        return T_TOP
    return TChoice.of(selected)


#: The guard ``T`` (one empty cube: every world point is inside).
TRUE_GUARD = GuardExpr(frozenset({()}))

#: The guard ``0`` (no cube: no world point is inside).
FALSE_GUARD = GuardExpr(frozenset())

"""Guard minimization: prime-cube covers over the four-world domain.

The constructors of :mod:`repro.temporal.cubes` already apply
absorption and single-base merging, which reproduces all of Example
9's reductions.  For larger synthesized guards (conjoined
dependencies) the result can still contain overlapping cubes; this
module computes a minimal-ish sum -- maximal (prime) cubes chosen by
greedy set cover -- which is what a human would write and what the
actors' cube scans benefit from.

Exact over the guard's mentioned bases: the region is enumerated
cell-by-cell (4^k points), so intended for per-event guards (small k),
not for arbitrary boolean functions.
"""

from __future__ import annotations

from itertools import product

from repro.algebra.symbols import Event
from repro.temporal.cubes import (
    C_OCC,
    E_OCC,
    FALSE_GUARD,
    FULL,
    GuardExpr,
    P_C,
    P_E,
    TRUE_GUARD,
)

_WORLDS = (E_OCC, C_OCC, P_E, P_C)


def _cells(guard: GuardExpr, bases: tuple[Event, ...]) -> frozenset[tuple[int, ...]]:
    """The region as explicit world tuples over ``bases``."""
    out = []
    for worlds in product(_WORLDS, repeat=len(bases)):
        point = dict(zip(bases, worlds))
        for cube in guard.cubes:
            if all(point.get(base, FULL) & mask for base, mask in cube):
                out.append(worlds)
                break
    return frozenset(out)


def _cube_cells(cube_masks: tuple[int, ...]) -> set[tuple[int, ...]]:
    pools = [
        [w for w in _WORLDS if mask & w] for mask in cube_masks
    ]
    return set(product(*pools))


def _expand(cube_masks: tuple[int, ...], region: frozenset) -> tuple[int, ...]:
    """Greedily widen each base's mask while staying inside the region."""
    masks = list(cube_masks)
    changed = True
    while changed:
        changed = False
        for i, mask in enumerate(masks):
            for bit in _WORLDS:
                if mask & bit:
                    continue
                candidate = masks[:i] + [mask | bit] + masks[i + 1:]
                if _cube_cells(tuple(candidate)) <= region:
                    masks[i] = mask | bit
                    mask = masks[i]
                    changed = True
    return tuple(masks)


def minimize(guard: GuardExpr) -> GuardExpr:
    """A minimal-ish equivalent guard: greedy prime-cube cover.

    >>> from repro.temporal.cubes import literal
    >>> from repro.algebra.symbols import Event
    >>> e = Event("e")
    >>> g = (literal("notyet", e) | literal("box", e))
    >>> minimize(g).is_true
    True
    """
    if guard.is_true or guard.is_false:
        return guard
    bases = tuple(sorted(guard.bases(), key=Event.sort_key))
    region = _cells(guard, bases)
    total = len(_WORLDS) ** len(bases)
    if len(region) == total:
        return TRUE_GUARD
    if not region:
        return FALSE_GUARD
    # prime cubes: expand every original cube maximally
    primes: set[tuple[int, ...]] = set()
    for cube in guard.cubes:
        cube_map = dict(cube)
        masks = tuple(cube_map.get(base, FULL) for base in bases)
        primes.add(_expand(masks, region))
    # also expand single cells not covered by the originals' expansions
    covered: set[tuple[int, ...]] = set()
    for prime in primes:
        covered |= _cube_cells(prime)
    for cell in region - covered:
        masks = tuple(cell)
        primes.add(_expand(masks, region))
    # greedy cover
    remaining = set(region)
    chosen: list[tuple[int, ...]] = []
    prime_cells = {prime: _cube_cells(prime) & region for prime in primes}
    while remaining:
        best = max(prime_cells, key=lambda p: len(prime_cells[p] & remaining))
        gain = prime_cells[best] & remaining
        if not gain:  # pragma: no cover - cover always progresses
            break
        chosen.append(best)
        remaining -= gain
    cubes = set()
    for masks in chosen:
        entries = tuple(
            (base, mask)
            for base, mask in zip(bases, masks)
            if mask != FULL
        )
        cubes.add(entries)
    return GuardExpr(frozenset(cubes))


def guard_size(guard: GuardExpr) -> tuple[int, int]:
    """(cube count, literal count) -- the compactness metrics."""
    return guard.cube_count(), guard.literal_count()

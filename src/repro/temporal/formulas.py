"""The temporal language ``T`` (paper Section 4.1, Syntax 5-6).

``T`` extends the event algebra with three unary connectives evaluated
at a point ``i`` of a maximal trace:

* ``Always(F)``      -- the paper's ``[] F``: ``F`` holds at every
  ``j >= i``;
* ``Eventually(F)``  -- the paper's ``<> F``: ``F`` holds at some
  ``j >= i``;
* ``NotYet(F)``      -- the paper's ``! F``: ``F`` does not hold *yet*
  (at ``i``).

Event-algebra expressions are members of ``T`` by Syntax 5; ``embed``
performs that coercion structurally, so the point semantics of
Semantics 7-11 applies to their connectives directly.

Because events are *stable* (once occurred, occurred forever,
Semantics 7), ``Always(e) == e`` at the semantic level for atoms; the
paper therefore writes guards with ``[] e`` to emphasize "has already
occurred".  We keep ``Always`` explicit in the AST and let the
semantics validate the equation.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.algebra.expressions import (
    Atom,
    Choice,
    Conj,
    Expr,
    Seq,
    Top,
    Zero,
)
from repro.algebra.symbols import Event, alphabet_of


class TFormula:
    """Base class for temporal formulas.  Instances are immutable."""

    __slots__ = ()

    def __add__(self, other: "TFormula") -> "TFormula":
        return TChoice.of([self, _as_formula(other)])

    def __and__(self, other: "TFormula") -> "TFormula":
        return TConj.of([self, _as_formula(other)])

    def __rshift__(self, other: "TFormula") -> "TFormula":
        return TSeq.of([self, _as_formula(other)])

    def events(self) -> frozenset[Event]:
        out: set[Event] = set()
        self._collect_events(out)
        return frozenset(out)

    def alphabet(self) -> frozenset[Event]:
        return alphabet_of(self.events())

    def bases(self) -> frozenset[Event]:
        return frozenset(e.base for e in self.events())

    def _collect_events(self, out: set[Event]) -> None:
        raise NotImplementedError

    def walk(self) -> Iterator["TFormula"]:
        yield self


def _as_formula(value) -> TFormula:
    if isinstance(value, TFormula):
        return value
    if isinstance(value, Expr):
        return embed(value)
    if isinstance(value, Event):
        return TAtom(value)
    raise TypeError(f"not a temporal formula: {value!r}")


class TZero(TFormula):
    __slots__ = ()

    def _collect_events(self, out: set[Event]) -> None:
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TZero)

    def __hash__(self) -> int:
        return hash("TZero")

    def __repr__(self) -> str:
        return "0"


class TTop(TFormula):
    __slots__ = ()

    def _collect_events(self, out: set[Event]) -> None:
        return None

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TTop)

    def __hash__(self) -> int:
        return hash("TTop")

    def __repr__(self) -> str:
        return "T"


T_ZERO = TZero()
T_TOP = TTop()


class TAtom(TFormula):
    """An event as a point formula: true once the event has occurred."""

    __slots__ = ("event",)

    def __init__(self, event: Event):
        object.__setattr__(self, "event", event)

    def __setattr__(self, key, value):  # pragma: no cover
        raise AttributeError("TAtom is immutable")

    def _collect_events(self, out: set[Event]) -> None:
        out.add(self.event)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TAtom) and other.event == self.event

    def __hash__(self) -> int:
        return hash(("TAtom", self.event))

    def __repr__(self) -> str:
        return repr(self.event)


class _Unary(TFormula):
    __slots__ = ("sub",)
    _tag = ""

    def __init__(self, sub: TFormula):
        object.__setattr__(self, "sub", _as_formula(sub))

    def __setattr__(self, key, value):  # pragma: no cover
        raise AttributeError("formula is immutable")

    def _collect_events(self, out: set[Event]) -> None:
        self.sub._collect_events(out)

    def walk(self) -> Iterator[TFormula]:
        yield self
        yield from self.sub.walk()

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.sub == self.sub

    def __hash__(self) -> int:
        return hash((self._tag, self.sub))

    def __repr__(self) -> str:
        return f"{self._tag}({self.sub!r})"


class Always(_Unary):
    """``[] F``: F holds at the current point and at all later points."""

    __slots__ = ()
    _tag = "[]"


class Eventually(_Unary):
    """``<> F``: F holds at the current point or at some later point."""

    __slots__ = ()
    _tag = "<>"


class NotYet(_Unary):
    """``! F``: F does not hold at the current point (Semantics 14)."""

    __slots__ = ()
    _tag = "!"


class _Nary(TFormula):
    __slots__ = ("parts",)
    _tag = ""
    _sep = ""

    def __init__(self, parts: tuple[TFormula, ...]):
        object.__setattr__(self, "parts", tuple(parts))

    def __setattr__(self, key, value):  # pragma: no cover
        raise AttributeError("formula is immutable")

    def _collect_events(self, out: set[Event]) -> None:
        for p in self.parts:
            p._collect_events(out)

    def walk(self) -> Iterator[TFormula]:
        yield self
        for p in self.parts:
            yield from p.walk()

    def __eq__(self, other: object) -> bool:
        return type(other) is type(self) and other.parts == self.parts

    def __hash__(self) -> int:
        return hash((self._tag, self.parts))

    def __repr__(self) -> str:
        return self._sep.join(
            f"({p!r})" if isinstance(p, (_Nary,)) else repr(p) for p in self.parts
        )


class TChoice(_Nary):
    """Disjunction at a point (Semantics 8)."""

    __slots__ = ()
    _tag = "TChoice"
    _sep = " + "

    @staticmethod
    def of(items: Iterable) -> TFormula:
        flat: list[TFormula] = []
        for item in items:
            item = _as_formula(item)
            if isinstance(item, TZero):
                continue
            if isinstance(item, TTop):
                return T_TOP
            if isinstance(item, TChoice):
                flat.extend(item.parts)
            else:
                flat.append(item)
        unique = list(dict.fromkeys(flat))
        if not unique:
            return T_ZERO
        if len(unique) == 1:
            return unique[0]
        return TChoice(tuple(unique))


class TConj(_Nary):
    """Conjunction at a point (Semantics 10)."""

    __slots__ = ()
    _tag = "TConj"
    _sep = " | "

    @staticmethod
    def of(items: Iterable) -> TFormula:
        flat: list[TFormula] = []
        for item in items:
            item = _as_formula(item)
            if isinstance(item, TTop):
                continue
            if isinstance(item, TZero):
                return T_ZERO
            if isinstance(item, TConj):
                flat.extend(item.parts)
            else:
                flat.append(item)
        unique = list(dict.fromkeys(flat))
        if not unique:
            return T_TOP
        if len(unique) == 1:
            return unique[0]
        return TConj(tuple(unique))


class TSeq(_Nary):
    """Sequencing at a point (Semantics 9): a split ``j <= i`` exists."""

    __slots__ = ()
    _tag = "TSeq"
    _sep = " . "

    @staticmethod
    def of(items: Iterable) -> TFormula:
        flat: list[TFormula] = []
        for item in items:
            item = _as_formula(item)
            if isinstance(item, TZero):
                return T_ZERO
            if isinstance(item, TSeq):
                flat.extend(item.parts)
            else:
                flat.append(item)
        if not flat:
            return T_TOP
        if len(flat) == 1:
            return flat[0]
        return TSeq(tuple(flat))


def embed(expr: Expr) -> TFormula:
    """Coerce an event-algebra expression into ``T`` (Syntax 5).

    The coercion is structural, so Semantics 7-11 interpret the
    embedded connectives pointwise.
    """
    if isinstance(expr, Zero):
        return T_ZERO
    if isinstance(expr, Top):
        return T_TOP
    if isinstance(expr, Atom):
        return TAtom(expr.event)
    if isinstance(expr, Seq):
        return TSeq.of([embed(p) for p in expr.parts])
    if isinstance(expr, Choice):
        return TChoice.of([embed(p) for p in expr.parts])
    if isinstance(expr, Conj):
        return TConj.of([embed(p) for p in expr.parts])
    raise TypeError(f"unknown expression: {expr!r}")  # pragma: no cover

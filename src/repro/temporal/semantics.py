"""Exact point semantics of ``T`` (paper Semantics 7-14).

``holds(u, i, F)`` decides ``u |=_i F`` literally as the paper defines
it, on *finite maximal* traces:

* Semantics 7:  an atom holds at ``i`` iff the event is among the
  first ``i`` events (indices are 1-based in the paper; ``i`` counts
  how many events have occurred, so ``i = 0`` is "nothing yet").
* Semantics 8/10/11: pointwise disjunction/conjunction/``T``.
* Semantics 9:  ``E1 . E2`` holds at ``i`` iff some split ``j <= i``
  has ``E1`` at ``j`` on ``u`` and ``E2`` at ``i - j`` on the suffix
  ``u^j``.
* Semantics 12/13: ``[]``/``<>`` quantify over ``j >= i`` up to the end
  of the (finite, maximal) trace.
* Semantics 14: ``!`` is point negation.

This module is the ground truth the cube algebra and the guard
synthesizer are validated against; it is deliberately direct rather
than fast.
"""

from __future__ import annotations

from typing import Iterable

from repro.algebra.symbols import Event
from repro.algebra.traces import Trace, maximal_universe
from repro.temporal.formulas import (
    Always,
    Eventually,
    NotYet,
    TAtom,
    TChoice,
    TConj,
    TFormula,
    TSeq,
    TTop,
    TZero,
)


def holds(trace: Trace, index: int, formula: TFormula) -> bool:
    """Decide ``u |=_i F`` (Semantics 7-14).

    ``index`` ranges over ``0 .. len(trace)``; the trace should be
    maximal for the ``[]``/``<>`` readings to match the paper (the
    top-level calls of the semantics are made with maximal traces).
    """
    if not 0 <= index <= len(trace):
        raise ValueError(f"index {index} out of range for {trace!r}")
    memo: dict = {}
    return _holds(trace.events, 0, index, len(trace.events), formula, memo)


def _holds(events, offset, index, end, formula, memo) -> bool:
    """``u^offset |=_index formula`` where the suffix runs to ``end``."""
    key = (offset, index, id(formula))
    cached = memo.get(key)
    if cached is not None:
        return cached
    result = _holds_uncached(events, offset, index, end, formula, memo)
    memo[key] = result
    return result


def _holds_uncached(events, offset, index, end, formula, memo) -> bool:
    if isinstance(formula, TTop):
        return True
    if isinstance(formula, TZero):
        return False
    if isinstance(formula, TAtom):
        # Semantics 7: the event occurred among the first ``index``
        # events of the current suffix.
        limit = min(offset + index, end)
        return any(events[k] == formula.event for k in range(offset, limit))
    if isinstance(formula, TChoice):
        return any(
            _holds(events, offset, index, end, p, memo) for p in formula.parts
        )
    if isinstance(formula, TConj):
        return all(
            _holds(events, offset, index, end, p, memo) for p in formula.parts
        )
    if isinstance(formula, TSeq):
        return _holds_seq(events, offset, index, end, formula.parts, 0, memo)
    horizon = end - offset  # largest meaningful index on this suffix
    if isinstance(formula, Always):
        return all(
            _holds(events, offset, j, end, formula.sub, memo)
            for j in range(index, horizon + 1)
        )
    if isinstance(formula, Eventually):
        return any(
            _holds(events, offset, j, end, formula.sub, memo)
            for j in range(index, horizon + 1)
        )
    if isinstance(formula, NotYet):
        return not _holds(events, offset, index, end, formula.sub, memo)
    raise TypeError(f"unknown formula: {formula!r}")  # pragma: no cover


def _holds_seq(events, offset, index, end, parts, part_index, memo) -> bool:
    # Semantics 9, n-ary: exists j <= index with part at j and the rest
    # at index - j on the suffix from j.
    if part_index == len(parts) - 1:
        return _holds(events, offset, index, end, parts[part_index], memo)
    for j in range(index + 1):
        if _holds(events, offset, j, end, parts[part_index], memo) and _holds_seq(
            events, offset + j, index - j, end, parts, part_index + 1, memo
        ):
            return True
    return False


def truth_vector(
    formula: TFormula,
    bases: Iterable[Event],
) -> frozenset[tuple[Trace, int]]:
    """All ``(maximal trace, index)`` points at which the formula holds."""
    points = []
    for u in maximal_universe(bases):
        for i in range(len(u) + 1):
            if holds(u, i, formula):
                points.append((u, i))
    return frozenset(points)


def t_equivalent(
    left: TFormula,
    right: TFormula,
    bases: Iterable[Event] | None = None,
) -> bool:
    """Semantic equivalence of two ``T`` formulas on maximal traces.

    Evaluates both formulas at every point of every maximal trace over
    the covering base alphabet.  Exponential in the alphabet size, so
    meant for the small alphabets of dependencies and tests.

    >>> from repro.algebra.symbols import Event
    >>> from repro.temporal.formulas import Always, NotYet, TAtom, T_TOP, TChoice
    >>> e = Event("e")
    >>> t_equivalent(TChoice.of([NotYet(TAtom(e)), Always(TAtom(e))]), T_TOP)
    True
    """
    base_set = set(b.base for b in (bases or ()))
    base_set |= left.bases() | right.bases()
    if not base_set:
        # No events mentioned: evaluate on a one-event dummy universe.
        base_set = {Event("dummy_base")}
    for u in maximal_universe(base_set):
        for i in range(len(u) + 1):
            if holds(u, i, left) != holds(u, i, right):
                return False
    return True


def t_entails(
    left: TFormula,
    right: TFormula,
    bases: Iterable[Event] | None = None,
) -> bool:
    """Pointwise entailment of ``T`` formulas on maximal traces."""
    base_set = set(b.base for b in (bases or ()))
    base_set |= left.bases() | right.bases()
    if not base_set:
        base_set = {Event("dummy_base")}
    for u in maximal_universe(base_set):
        for i in range(len(u) + 1):
            if holds(u, i, left) and not holds(u, i, right):
                return False
    return True

"""Compiled guard automata: interned decision diagrams over guards.

The cube engine *rewrites* a guard on every assimilated announcement:
``simplify_under`` walks the cube DNF, and -- although the rewrite is
memoized -- the memo key is built from the actor's **entire**
knowledge map, so each hot-loop hit still costs ``O(|K| log |K|)``
tuple-building and hashing at fan-in ``|K|``.  The verdict checks
(``region_subsumes`` / ``possible_under``) re-run on top.

This module compiles each synthesized :class:`GuardExpr` into a
hash-consed *guard automaton* whose runtime state is a single node
pointer:

* a :class:`GuardNode` is the interned pair ``(residual guard,
  knowledge restricted to the residual's bases)`` -- the complete
  input of every per-announcement computation the cube engine
  performs.  Restriction is sound because ``simplify_under``,
  ``region_subsumes``, ``possible_under``, and the watch-set rules
  consult the knowledge map **only** at bases the residual's cubes
  mention;
* *learn edges* move between nodes as knowledge tightens: one interned
  dict hop per announcement, zero cube allocation.  A base outside the
  residual's support is a self-loop decided by one frozenset probe;
* each node lazily computes -- once, ever, across all actors and runs
  sharing the node -- its **verdict** (fire / park / never, exactly
  Section 4.3's evaluation rule), its **assimilation successor** (the
  ``simplify_under`` result, re-interned), and its **watch set** (the
  PR 6 wake rule, so the scheduler's ``WatchIndex`` derives watched
  bases straight from the current node: the two engines compose
  instead of layering);
* terminal nodes are the constant guards: an unsatisfiable conjunction
  or dead event compiles to the constant-false node whose verdict is
  permanently ``never`` (surfaced as a warning by ``repro analyze``).

Byte-for-byte equivalence with the cube engine is by construction:
the node's residual component *is* the actor's residual (the intern
key includes it, so iterated vs one-shot simplification cannot
diverge), and every cached value is defined as the result of the very
cube-engine call it replaces.  The differential harness
(``tests/properties/test_compiled_equivalence.py``) enforces identical
traces under fuzzed faults, resurrection, and runtime guard growth
(handled by :meth:`GuardCursor.reset` -- an incremental recompile that
re-enters the interned node space at the new guard).

Instances of a :class:`~repro.workflows.template.WorkflowTemplate`
compile once and stamp per-suffix tables through interned renaming
(the PR 5 trick): the renamed guards from ``rename_guard_table`` are
the intern keys, so stamping costs one dict probe per guard.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.algebra.symbols import Event

from .cubes import FULL, GuardExpr
from .watch import watch_bases

#: Restricted-knowledge tuples are sorted by base; masks are 4-bit
#: world sets (:mod:`repro.temporal.cubes`).
Know = tuple[tuple[Event, int], ...]

_UNSET = object()


class _CompiledStats:
    """Process-wide counters (per-engine counts mirror these)."""

    nodes = 0        # interned nodes created
    reused = 0       # intern probes served by an existing node
    edges = 0        # learn edges installed (first traversal)
    hops = 0         # O(1) cached transitions / verdict reads served
    expansions = 0   # lazy verdict / simplify / watch computations
    cursors = 0      # cursors handed out
    recompiles = 0   # cursor resets (runtime modification, crashes)


def compiled_stats() -> dict:
    """Snapshot of the process-wide compiled-guard counters, for
    ``kernel_stats()['compiled']``."""
    return {
        "nodes": _CompiledStats.nodes,
        "reused": _CompiledStats.reused,
        "edges": _CompiledStats.edges,
        "hops": _CompiledStats.hops,
        "expansions": _CompiledStats.expansions,
        "cursors": _CompiledStats.cursors,
        "recompiles": _CompiledStats.recompiles,
    }


def clear_compiled() -> None:
    """Reset the counters and the default engine's intern table."""
    _CompiledStats.nodes = 0
    _CompiledStats.reused = 0
    _CompiledStats.edges = 0
    _CompiledStats.hops = 0
    _CompiledStats.expansions = 0
    _CompiledStats.cursors = 0
    _CompiledStats.recompiles = 0
    DEFAULT_ENGINE._nodes.clear()
    DEFAULT_ENGINE._reset_counts()


def _restrict(guard: GuardExpr, knowledge: Mapping[Event, int]) -> Know:
    """Project a knowledge map onto the guard's base support.

    ``O(|bases(guard)|)`` -- this replaces the cube engine's
    ``O(|K| log |K|)`` whole-map memo key, and it shrinks with the
    residual as announcements assimilate."""
    if not knowledge:
        return ()
    return tuple(
        (base, knowledge[base])
        for base in guard._sorted_bases()
        if base in knowledge
    )


def _set_know(know: Know, base: Event, mask: int) -> Know:
    """Insert or replace one base's mask, keeping the sort order."""
    out = []
    placed = False
    key = base.sort_key()
    for b, m in know:
        if b == base:
            out.append((base, mask))
            placed = True
        elif not placed and b.sort_key() > key:
            out.append((base, mask))
            out.append((b, m))
            placed = True
        else:
            out.append((b, m))
    if not placed:
        out.append((base, mask))
    return tuple(out)


class GuardNode:
    """One interned automaton state: ``(residual, restricted knowledge)``.

    Everything the scheduler asks per announcement is a slot on the
    node, filled lazily by the first asker and shared by every actor
    (and every run within one process) that reaches the same state.
    """

    __slots__ = (
        "engine", "residual", "know",
        "_edges", "_next", "_verdict", "_watches",
    )

    def __init__(self, engine: "CompiledGuardEngine", residual: GuardExpr, know: Know):
        self.engine = engine
        self.residual = residual
        self.know = know
        self._edges: dict[tuple[Event, int], GuardNode] = {}
        self._next: GuardNode | None = None
        self._verdict: str | None = None
        self._watches = _UNSET

    # -- transitions ---------------------------------------------------

    def learn(self, base: Event, mask: int) -> "GuardNode":
        """The knowledge-tightening transition: ``knowledge[base] = mask``.

        A base outside the residual's support is a self-loop (the cube
        engine's rewrite would not touch the residual either); a
        relevant base follows one interned edge, installed on first
        traversal."""
        if base not in self.residual.bases():
            _CompiledStats.hops += 1
            self.engine.hops += 1
            return self
        return self._transition(base, mask)

    def refined(self, base: Event, mask: int) -> "GuardNode":
        """Non-committal conjunction of a transient fact: the node for
        ``knowledge[base] &= mask``, without any cursor moving there.

        This is how certificate rounds evaluate (Section 4.3's
        transient not-yet facts): descend along learn edges, read the
        verdict, never commit the facts."""
        if base not in self.residual.bases():
            return self
        current = FULL
        for b, m in self.know:
            if b == base:
                current = m
                break
        combined = current & mask
        if combined == current:
            return self
        return self._transition(base, combined)

    def _transition(self, base: Event, mask: int) -> "GuardNode":
        key = (base, mask)
        succ = self._edges.get(key)
        if succ is None:
            succ = self.engine._node(
                self.residual, _set_know(self.know, base, mask)
            )
            self._edges[key] = succ
            _CompiledStats.edges += 1
            self.engine.edges += 1
        else:
            _CompiledStats.hops += 1
            self.engine.hops += 1
        return succ

    def assimilate(self) -> "GuardNode":
        """The ``simplify_under`` successor: residual rewritten by the
        node's knowledge, knowledge re-restricted to the new support.

        Computed with the cube engine's own ``simplify_under`` exactly
        once per node, then a pointer hop forever after."""
        nxt = self._next
        if nxt is None:
            _CompiledStats.expansions += 1
            self.engine.expansions += 1
            knowledge = dict(self.know)
            residual = self.residual.simplify_under(knowledge)
            nxt = self.engine._node(residual, _restrict(residual, knowledge))
            self._next = nxt
        else:
            _CompiledStats.hops += 1
            self.engine.hops += 1
        return nxt

    # -- cached evaluations --------------------------------------------

    def verdict(self) -> str:
        """Section 4.3's evaluation rule, precomputed per node:
        ``"fire"`` / ``"never"`` / ``"park"``."""
        v = self._verdict
        if v is None:
            _CompiledStats.expansions += 1
            self.engine.expansions += 1
            knowledge = dict(self.know)
            if self.residual.region_subsumes(knowledge):
                v = "fire"
            elif not self.residual.possible_under(knowledge):
                v = "never"
            else:
                v = "park"
            self._verdict = v
        else:
            _CompiledStats.hops += 1
            self.engine.hops += 1
        return v

    def watches(self):
        """The PR 6 wake set of this state (``None`` = wake on all),
        read off the node instead of recomputed per registration."""
        w = self._watches
        if w is _UNSET:
            _CompiledStats.expansions += 1
            self.engine.expansions += 1
            w = watch_bases(self.residual, dict(self.know))
            self._watches = w
        else:
            _CompiledStats.hops += 1
            self.engine.hops += 1
        return w

    def __repr__(self) -> str:  # pragma: no cover
        return f"GuardNode({self.residual!r}, know={len(self.know)})"


class GuardCursor:
    """One actor's runtime state: a single pointer into the automaton.

    Mirrors the actor's ``(residual guard, knowledge)`` pair move for
    move; every method is the O(1) compiled replacement for one cube-
    engine call and returns/produces exactly that call's value.
    """

    __slots__ = ("engine", "node")

    def __init__(
        self,
        engine: "CompiledGuardEngine",
        guard: GuardExpr,
        knowledge: Mapping[Event, int],
    ):
        _CompiledStats.cursors += 1
        engine.cursors += 1
        self.engine = engine
        self.node = engine._node(guard, _restrict(guard, knowledge))

    def learn(self, base: Event, mask: int) -> None:
        """Track ``actor.learn``: knowledge for ``base`` is now ``mask``."""
        self.node = self.node.learn(base, mask)

    def assimilate(self) -> GuardExpr:
        """Advance past ``simplify_under`` and return the new residual
        (equal, value for value, to what the cube engine assigns)."""
        self.node = self.node.assimilate()
        return self.node.residual

    def verdict(self) -> str:
        return self.node.verdict()

    def watches(self):
        return self.node.watches()

    def transient_verdict(
        self, facts: Iterable[tuple[Event, int]]
    ) -> str:
        """Verdict under transient facts (certificate rounds): descend
        along learn edges without moving this cursor."""
        node = self.node
        for base, mask in facts:
            node = node.refined(base, mask)
        return node.verdict()

    def reset(self, guard: GuardExpr, knowledge: Mapping[Event, int]) -> None:
        """Incremental recompile: re-enter the automaton at a new
        guard (runtime dependency growth/removal, crash resets).  The
        new state's nodes are interned lazily like any other -- a
        recompile shares every state already explored."""
        _CompiledStats.recompiles += 1
        self.engine.recompiles += 1
        self.node = self.engine._node(guard, _restrict(guard, knowledge))


class CompiledGuardEngine:
    """The hash-consing node store (one per scheduler, or the module
    :data:`DEFAULT_ENGINE` for template/analysis compilation)."""

    def __init__(self) -> None:
        self._nodes: dict[tuple[GuardExpr, Know], GuardNode] = {}
        self._reset_counts()

    def _reset_counts(self) -> None:
        self.reused = 0
        self.edges = 0
        self.hops = 0
        self.expansions = 0
        self.cursors = 0
        self.recompiles = 0

    def _node(self, residual: GuardExpr, know: Know) -> GuardNode:
        key = (residual, know)
        node = self._nodes.get(key)
        if node is None:
            node = GuardNode(self, residual, know)
            self._nodes[key] = node
            _CompiledStats.nodes += 1
        else:
            _CompiledStats.reused += 1
            self.reused += 1
        return node

    # -- public API ----------------------------------------------------

    def root(self, guard: GuardExpr) -> GuardNode:
        """The compiled automaton of a guard (its no-knowledge node)."""
        return self._node(guard, ())

    def cursor(
        self, guard: GuardExpr, knowledge: Mapping[Event, int] | None = None
    ) -> GuardCursor:
        return GuardCursor(self, guard, knowledge or {})

    def compile_table(
        self, guards: Mapping[Event, GuardExpr]
    ) -> dict[Event, GuardNode]:
        """Compile a per-event guard table to its root nodes.

        Identical guards intern to one node, so the result exposes the
        table's sharing structure (see :func:`table_stats`)."""
        return {
            event: self.root(g)
            for event, g in sorted(
                guards.items(), key=lambda kv: kv[0].sort_key()
            )
        }

    def __len__(self) -> int:
        return len(self._nodes)

    def counts(self) -> dict:
        """Per-engine counters, overlaid onto the process-wide totals
        by ``DistributedScheduler.metrics_report()``."""
        return {
            "nodes": len(self._nodes),
            "reused": self.reused,
            "edges": self.edges,
            "hops": self.hops,
            "expansions": self.expansions,
            "cursors": self.cursors,
            "recompiles": self.recompiles,
        }


#: Shared engine for template stamping and compile-time analysis.
DEFAULT_ENGINE = CompiledGuardEngine()


def table_stats(guards: Mapping[Event, GuardExpr]) -> dict:
    """Compile-time statistics of a guard table's automata.

    JSON-ready; reported by ``repro analyze`` (and its ``--json``
    form).  ``constant_false`` lists *dead* events -- their guard
    compiled to the constant-false terminal, so every attempt will be
    rejected outright -- and ``constant_true`` the unconstrained ones.
    ``sharing_ratio`` is ``1 - roots/guards``: the fraction of guard
    slots served by a node another event already interned.
    """
    roots = set(guards.values())
    total = len(guards)
    return {
        "guards": total,
        "roots": len(roots),
        "sharing_ratio": round(1.0 - len(roots) / total, 4) if total else 0.0,
        "cubes": sum(g.cube_count() for g in guards.values()),
        "literals": sum(g.literal_count() for g in guards.values()),
        "constant_false": sorted(
            repr(e) for e, g in guards.items() if g.is_false
        ),
        "constant_true": sorted(
            repr(e) for e, g in guards.items() if g.is_true
        ),
    }

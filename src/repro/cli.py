"""Command-line interface: compile, analyze, render, and run workflows.

Usage (also via ``python -m repro``):

.. code-block:: text

    repro compile  SPEC.wf            # per-event guard table
    repro analyze  SPEC.wf            # compile-time analysis report
    repro automaton "~e + ~f + e.f"   # Figure-2 DOT for one dependency
    repro graph    SPEC.wf            # workflow structure as DOT
    repro run      SPEC.wf [options]  # simulate a run, print timeline
    repro guard    "DEP" EVENT        # one guard (Example-9 style)
    repro trace check  TRACE.jsonl    # verify a recorded trace offline
    repro trace export TRACE.jsonl    # convert to chrome://tracing JSON

``run`` options: ``--scheduler {distributed,centralized,automata}``,
``--attempt EVENT=TIME`` (repeatable), ``--latency L``, ``--seed N``,
``--json`` (machine-readable result + metrics + trace on stdout),
``--trace FILE`` (write the causal event trace as JSONL).

Exit codes: ``run`` exits 0 only when the run is *clean* -- no
dependency violations and no unsettled bases; 1 when either remains;
2 on usage errors.  ``trace check`` exits 1 when the trace violates an
invariant.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.algebra.parser import parse
from repro.obs import Tracer, check_file, read_jsonl, to_chrome
from repro.scheduler import (
    AutomataScheduler,
    CentralizedScheduler,
    DistributedScheduler,
)
from repro.scheduler.agents import AgentScript, ScriptedAttempt
from repro.sim.network import ConstantLatency
from repro.temporal.guards import guard as synthesize_guard
from repro.viz import (
    automaton_to_dot,
    dependency_to_dot,
    guards_to_text,
    result_to_text,
    workflow_to_dot,
)
from repro.workflows.analysis import analyze
from repro.workflows.compiler import compile_workflow
from repro.workflows.loader import load

SCHEDULERS = {
    "distributed": DistributedScheduler,
    "centralized": CentralizedScheduler,
    "automata": AutomataScheduler,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Workflow dependency compiler and scheduler "
        "(Singh, ICDE 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="print the guard table")
    p_compile.add_argument("spec", help="workflow spec file (.wf)")
    p_compile.add_argument(
        "--minimize",
        action="store_true",
        help="apply prime-cube minimization to the printed guards",
    )

    p_analyze = sub.add_parser("analyze", help="compile-time analysis")
    p_analyze.add_argument("spec")

    p_auto = sub.add_parser(
        "automaton", help="residuation automaton of a dependency, as DOT"
    )
    p_auto.add_argument("dependency", help='e.g. "~e + ~f + e . f"')

    p_graph = sub.add_parser("graph", help="workflow structure as DOT")
    p_graph.add_argument("spec")

    p_guard = sub.add_parser("guard", help="synthesize one guard")
    p_guard.add_argument("dependency")
    p_guard.add_argument("event", help='e.g. "e" or "~e"')

    p_run = sub.add_parser("run", help="simulate a run")
    p_run.add_argument("spec")
    p_run.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="distributed",
    )
    p_run.add_argument(
        "--attempt",
        action="append",
        default=[],
        metavar="EVENT=TIME",
        help="scripted attempt, e.g. --attempt s_buy=0 --attempt c_buy=5",
    )
    p_run.add_argument("--latency", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON report "
        "(timeline, metrics, causal trace) instead of text",
    )
    p_run.add_argument(
        "--trace",
        metavar="FILE",
        help="record the run's causal event trace as JSONL to FILE",
    )

    p_trace = sub.add_parser(
        "trace", help="inspect recorded JSONL event traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_check = trace_sub.add_parser(
        "check", help="verify a trace's causal and safety invariants"
    )
    p_check.add_argument("trace_file", help="JSONL trace (from run --trace)")
    p_export = trace_sub.add_parser(
        "export", help="convert a trace to chrome://tracing JSON"
    )
    p_export.add_argument("trace_file")
    p_export.add_argument(
        "-o", "--output", help="write here instead of stdout"
    )
    return parser


def _cmd_compile(args) -> int:
    workflow = load(args.spec)
    compiled = compile_workflow(workflow)
    print(f"workflow {workflow.name}: {len(workflow.dependencies)} dependencies")
    guards = compiled.guards
    if args.minimize:
        from repro.temporal.simplify import minimize

        guards = {event: minimize(g) for event, g in guards.items()}
    print(guards_to_text(guards))
    if compiled.promise_pairs:
        for pair in sorted(compiled.promise_pairs, key=repr):
            a, b = sorted(pair)
            print(f"consensus pair: {a!r} <-> {b!r}")
    return 0


def _cmd_analyze(args) -> int:
    workflow = load(args.spec)
    report = analyze(workflow)
    print(report.summary())
    return 0 if report.ok else 1


def _cmd_automaton(args) -> int:
    dependency = parse(args.dependency)
    print(dependency_to_dot(dependency))
    return 0


def _cmd_graph(args) -> int:
    workflow = load(args.spec)
    print(workflow_to_dot(workflow))
    return 0


def _cmd_guard(args) -> int:
    dependency = parse(args.dependency)
    event_expr = parse(args.event)
    from repro.algebra.expressions import Atom

    if not isinstance(event_expr, Atom):
        print(f"not a single event: {args.event!r}", file=sys.stderr)
        return 2
    result = synthesize_guard(dependency, event_expr.event)
    print(f"G({dependency!r}, {event_expr.event!r}) = {result!r}")
    return 0


def _cmd_run(args) -> int:
    workflow = load(args.spec)
    attempts = []
    for spec in args.attempt:
        name, _, time_text = spec.partition("=")
        if not time_text:
            print(f"bad --attempt (want EVENT=TIME): {spec!r}", file=sys.stderr)
            return 2
        event_expr = parse(name.strip())
        from repro.algebra.expressions import Atom

        if not isinstance(event_expr, Atom):
            print(f"bad --attempt event: {name!r}", file=sys.stderr)
            return 2
        attempts.append(
            ScriptedAttempt(float(time_text), event_expr.event)
        )
    scheduler_cls = SCHEDULERS[args.scheduler]
    tracer = Tracer() if (args.json or args.trace) else None
    sched = scheduler_cls(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=ConstantLatency(args.latency),
        rng=random.Random(args.seed),
        tracer=tracer,
    )
    scripts = []
    if attempts:
        scripts.append(AgentScript("cli", attempts))
    result = sched.run(scripts)
    if args.trace and tracer is not None:
        tracer.dump(args.trace)
    if args.json:
        print(json.dumps(_run_report(result, sched, tracer, args.trace), indent=2))
    else:
        print(result_to_text(result))
        if result.violations:
            for violation in result.violations:
                print(f"violation[{violation.kind}]: {violation.detail}")
    # the exit contract: clean means no violations AND every base settled
    return 0 if (not result.violations and not result.unsettled) else 1


def _run_report(result, sched, tracer, trace_path) -> dict:
    """The ``run --json`` payload: timeline + metrics + causal trace."""
    report = {
        "ok": result.ok,
        "makespan": result.makespan,
        "messages": result.messages,
        "timeline": [
            {
                "event": repr(entry.event),
                "time": entry.time,
                "attempted_at": entry.attempted_at,
                "outcome": entry.outcome.value,
            }
            for entry in result.entries
        ],
        "violations": [
            {"kind": v.kind, "detail": v.detail} for v in result.violations
        ],
        "unsettled": [repr(b) for b in result.unsettled],
        "metrics": sched.metrics_report(),
    }
    if trace_path:
        report["trace_file"] = str(trace_path)
    elif tracer is not None:
        report["trace"] = tracer.records
    return report


def _cmd_trace(args) -> int:
    if args.trace_command == "check":
        count, diagnostics = check_file(args.trace_file)
        if not diagnostics:
            print(f"{args.trace_file}: {count} records, all invariants hold")
            return 0
        print(
            f"{args.trace_file}: {len(diagnostics)} violation(s) "
            f"in {count} records",
            file=sys.stderr,
        )
        for diagnostic in diagnostics:
            print(str(diagnostic), file=sys.stderr)
        return 1
    # export
    chrome = to_chrome(read_jsonl(args.trace_file))
    text = json.dumps(chrome)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(chrome['traceEvents'])} events to {args.output}")
    else:
        print(text)
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "compile": _cmd_compile,
        "analyze": _cmd_analyze,
        "automaton": _cmd_automaton,
        "graph": _cmd_graph,
        "guard": _cmd_guard,
        "run": _cmd_run,
        "trace": _cmd_trace,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:  # piped into head & co.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

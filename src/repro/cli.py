"""Command-line interface: compile, analyze, render, and run workflows.

Usage (also via ``python -m repro``):

.. code-block:: text

    repro compile  SPEC.wf            # per-event guard table
    repro analyze  SPEC.wf            # compile-time analysis report
    repro automaton "~e + ~f + e.f"   # Figure-2 DOT for one dependency
    repro graph    SPEC.wf            # workflow structure as DOT
    repro run      SPEC.wf [options]  # simulate a run, print timeline
    repro guard    "DEP" EVENT        # one guard (Example-9 style)
    repro trace check  TRACE.jsonl    # verify a recorded trace offline
    repro trace export TRACE.jsonl    # convert to chrome://tracing JSON
    repro trace query  TRACE.jsonl    # filter, latencies, critical path
    repro explain  TRACE.jsonl EVENT  # why did/didn't EVENT fire?
    repro prom lint METRICS.prom      # validate Prometheus text output
    repro profile  SPEC.wf            # phase-attributed wall-time profile
    repro slo check REPORT.json SLO.json  # gate a run on thresholds
    repro diff     A.jsonl B.jsonl    # causally diff two traces
    repro runs     {list,show,gc,compare,regress}  # run registry

Trace files ending in ``.gz`` are written and read gzip-compressed
everywhere (``run --trace``, ``trace check/export/query``, ``explain``,
``diff``).

``run`` options: ``--scheduler {distributed,centralized,automata}``,
``--attempt EVENT=TIME`` (repeatable), ``--latency L``, ``--seed N``,
``--jitter J`` (uniform random delivery jitter around the base
latency, seeded by ``--seed`` -- makes the seed observable in traces),
``--json`` (machine-readable result + metrics + trace on stdout),
``--trace FILE`` (write the causal event trace as JSONL),
``--flight-record N`` (ring-buffered flight-recorder tracing: keep
only the newest N records in memory; ``--flight-dump FILE`` dumps the
retained window when the run misbehaves), ``--slo FILE`` (gate the
run on an SLO document; failures arm the flight recorder and flip the
exit code), ``--record`` (store the finished run in the regression
registry; ``--runs-dir DIR`` overrides ``.repro/runs``),
``--no-settle`` (leave unattempted bases unsettled -- parked events
stay parked for ``explain`` to dissect), and, on the distributed
scheduler only: ``--snapshot-every N`` (consistent global snapshots on
a virtual-time cadence), ``--snapshot-out FILE`` (write them as JSON),
``--prom FILE`` (write metrics in Prometheus text format),
``--profile [--profile-out FILE --profile-format F]`` (phase-attributed
wall-time profile: text table, flamegraph collapsed stacks, or
chrome://tracing JSON), ``--sample-every T`` (gauge time series on a
virtual-time cadence, merged per shard in scale-out mode), and
``--shards N [--instances K] [--workers M]`` (scale-out mode: the spec
becomes a template, K suffixed instances are stamped out by renaming
its compiled guards, and N schedulers run them in a process pool;
timeline, trace, and metrics come back merged).

Exit codes: ``run`` exits 0 only when the run is *clean* -- no
dependency violations, no unsettled bases, and (with ``--slo``) no
failed SLO rule; 1 when any remains; 2 on usage errors.  ``trace
check`` exits 1 when the trace violates an invariant (an empty or
truncated trace is reported, not a traceback); ``trace query`` exits 1
when the trace is empty, no record matches, or the requested analysis
has no data; ``slo check`` exits 1 when any rule fails (a rule with no
data fails closed); ``explain`` exits 1 when the event never appears
in the trace; ``diff`` exits 0 when the traces are causally identical,
1 when they diverge (the first divergent event and its root-cause
chain are printed), 2 when either trace is empty or unusable; ``runs
compare`` follows ``diff``; ``runs regress`` exits 0 when the newest
stored run holds the line, 1 when an indicator (or SLO) regressed, 2
with fewer than two stored runs; file errors exit 2.
"""

from __future__ import annotations

import argparse
import json
import random
import sys

from repro.algebra.parser import parse
from repro.obs import Tracer, check_file, open_trace, read_jsonl, to_chrome
from repro.scheduler import (
    AutomataScheduler,
    CentralizedScheduler,
    DistributedScheduler,
)
from repro.scheduler.agents import AgentScript, ScriptedAttempt
from repro.sim.network import ConstantLatency, UniformLatency
from repro.temporal.guards import guard as synthesize_guard
from repro.viz import (
    automaton_to_dot,
    dependency_to_dot,
    guards_to_text,
    result_to_text,
    workflow_to_dot,
)
from repro.workflows.analysis import analyze
from repro.workflows.compiler import compile_workflow
from repro.workflows.loader import load

SCHEDULERS = {
    "distributed": DistributedScheduler,
    "centralized": CentralizedScheduler,
    "automata": AutomataScheduler,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Workflow dependency compiler and scheduler "
        "(Singh, ICDE 1996 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="print the guard table")
    p_compile.add_argument("spec", help="workflow spec file (.wf)")
    p_compile.add_argument(
        "--minimize",
        action="store_true",
        help="apply prime-cube minimization to the printed guards",
    )

    p_analyze = sub.add_parser("analyze", help="compile-time analysis")
    p_analyze.add_argument("spec")
    p_analyze.add_argument(
        "--json",
        action="store_true",
        help="machine-readable report (satisfiability, conflicts, "
        "compiled guard-table stats) instead of text; the exit code "
        "contract is unchanged: 0 analysis clean, 1 findings "
        "(unsatisfiable, conflicting, or unsupported-mandatory "
        "dependencies), 2 usage/parse errors",
    )

    p_auto = sub.add_parser(
        "automaton", help="residuation automaton of a dependency, as DOT"
    )
    p_auto.add_argument("dependency", help='e.g. "~e + ~f + e . f"')

    p_graph = sub.add_parser("graph", help="workflow structure as DOT")
    p_graph.add_argument("spec")

    p_guard = sub.add_parser("guard", help="synthesize one guard")
    p_guard.add_argument("dependency")
    p_guard.add_argument("event", help='e.g. "e" or "~e"')

    p_run = sub.add_parser("run", help="simulate a run")
    p_run.add_argument("spec")
    p_run.add_argument(
        "--scheduler",
        choices=sorted(SCHEDULERS),
        default="distributed",
    )
    p_run.add_argument(
        "--attempt",
        action="append",
        default=[],
        metavar="EVENT=TIME",
        help="scripted attempt, e.g. --attempt s_buy=0 --attempt c_buy=5",
    )
    p_run.add_argument("--latency", type=float, default=1.0)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--jitter",
        type=float,
        default=0.0,
        metavar="J",
        help="deliver each message after latency +/- J (uniform, seeded "
        "by --seed); default 0 = constant latency",
    )
    p_run.add_argument(
        "--json",
        action="store_true",
        help="print a machine-readable JSON report "
        "(timeline, metrics, causal trace) instead of text",
    )
    p_run.add_argument(
        "--trace",
        metavar="FILE",
        help="record the run's causal event trace as JSONL to FILE "
        "(gzip when FILE ends in .gz)",
    )
    p_run.add_argument(
        "--flight-record",
        type=int,
        metavar="N",
        help="flight-recorder tracing: keep only the newest N trace "
        "records in a ring (fault records are pinned); --trace and "
        "--json then carry the retained window with a self-describing "
        "header the checker understands",
    )
    p_run.add_argument(
        "--flight-dump",
        metavar="FILE",
        help="with --flight-record: dump the retained window to FILE "
        "when the run misbehaves (violations, unsettled bases, failed "
        "SLO rules, checker diagnostics, crashes)",
    )
    p_run.add_argument(
        "--slo",
        metavar="FILE",
        help="gate the run on an SLO document (as in ``repro slo "
        "check``); failures print, arm the flight recorder, and make "
        "the run exit 1",
    )
    p_run.add_argument(
        "--record",
        action="store_true",
        help="store the finished run (report, trace, profile, config) "
        "in the content-addressed run registry for ``repro runs``",
    )
    p_run.add_argument(
        "--runs-dir",
        metavar="DIR",
        help="with --record: registry directory (default: .repro/runs)",
    )
    p_run.add_argument(
        "--no-settle",
        action="store_true",
        help="skip the settlement phase: unattempted bases stay "
        "unsettled and parked events stay parked (useful with "
        "``repro explain``)",
    )
    p_run.add_argument(
        "--snapshot-every",
        type=float,
        metavar="N",
        help="take a consistent global snapshot every N virtual time "
        "units (distributed scheduler only)",
    )
    p_run.add_argument(
        "--snapshot-out",
        metavar="FILE",
        help="write the snapshots as a JSON document to FILE",
    )
    p_run.add_argument(
        "--prom",
        metavar="FILE",
        help="write the run's metrics in Prometheus text format to FILE",
    )
    p_run.add_argument(
        "--shards",
        type=int,
        metavar="N",
        help="scale-out mode: treat the spec as a workflow template, "
        "stamp out independent suffixed instances, and run them on N "
        "schedulers in a process pool (distributed scheduler only); "
        "traces and metrics are merged",
    )
    p_run.add_argument(
        "--instances",
        type=int,
        metavar="K",
        help="with --shards: how many template instances to stamp out "
        "(suffix _i0 ... _i{K-1}; default: one per shard)",
    )
    p_run.add_argument(
        "--workers",
        type=int,
        metavar="M",
        help="with --shards: worker processes for the pool (default: "
        "one per shard, capped by CPU count; 1 = run in-process)",
    )
    p_run.add_argument(
        "--placement",
        choices=("round-robin", "min-cut"),
        default="round-robin",
        help="with --shards: how instances are placed -- round-robin "
        "(baseline) or min-cut (the constraint-aware partitioner "
        "colocates instances coupled by --cross-dep dependencies, "
        "minimizing routed cross-shard announcements)",
    )
    p_run.add_argument(
        "--cross-dep",
        action="append",
        default=[],
        metavar="EXPR",
        help="with --shards: a dependency over events of *different* "
        "instances (suffixed names, e.g. \"~b_i1 + e_i0 . b_i1\"); "
        "repeatable.  Shards sharing one co-simulate, exchanging "
        "announcements over an exactly-once session channel",
    )
    p_run.add_argument(
        "--steal",
        action="store_true",
        help="with --shards: split independent shards into stealable "
        "dependency-closed chunks and rebalance them across workers "
        "by deterministic work stealing",
    )
    p_run.add_argument(
        "--compiled-guards",
        action="store_true",
        help="evaluate guards on compiled interned decision diagrams "
        "(O(1) per announcement) instead of re-simplifying the cube "
        "DNF; byte-identical outcomes, reported under kernel.compiled "
        "(distributed scheduler only)",
    )
    p_run.add_argument(
        "--profile",
        action="store_true",
        help="attribute wall time to scheduler phases (synthesis, guard "
        "evaluation, delivery, ...) and report the breakdown "
        "(distributed scheduler only)",
    )
    p_run.add_argument(
        "--profile-out",
        metavar="FILE",
        help="with --profile: write the profile to FILE instead of "
        "embedding/printing it",
    )
    p_run.add_argument(
        "--profile-format",
        choices=("text", "collapsed", "chrome", "json"),
        default="collapsed",
        help="format for --profile-out: flamegraph collapsed stacks "
        "(default), chrome://tracing JSON, raw JSON, or the text table",
    )
    p_run.add_argument(
        "--sample-every",
        type=float,
        metavar="T",
        help="sample gauge time series (parked events, channel backlog, "
        "in-flight messages, fire/settle rates) every T virtual time "
        "units; series ride in metrics under \"timeseries\" "
        "(distributed scheduler only)",
    )

    p_explain = sub.add_parser(
        "explain",
        help="decision provenance for one event, from a recorded trace",
    )
    p_explain.add_argument("trace_file", help="JSONL trace (from run --trace)")
    p_explain.add_argument("event", help='e.g. "c_buy" or "~c_buy"')
    p_explain.add_argument(
        "--json", action="store_true",
        help="machine-readable explanation instead of text",
    )

    p_prom = sub.add_parser(
        "prom", help="work with Prometheus text-format metric files"
    )
    prom_sub = p_prom.add_subparsers(dest="prom_command", required=True)
    p_prom_lint = prom_sub.add_parser(
        "lint", help="validate a Prometheus text exposition file"
    )
    p_prom_lint.add_argument("prom_file")

    p_trace = sub.add_parser(
        "trace", help="inspect recorded JSONL event traces"
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)
    p_check = trace_sub.add_parser(
        "check", help="verify a trace's causal and safety invariants"
    )
    p_check.add_argument("trace_file", help="JSONL trace (from run --trace)")
    p_export = trace_sub.add_parser(
        "export", help="convert a trace to chrome://tracing JSON"
    )
    p_export.add_argument("trace_file")
    p_export.add_argument(
        "-o", "--output", help="write here instead of stdout"
    )
    p_query = trace_sub.add_parser(
        "query", help="filter and analyze a recorded trace offline"
    )
    p_query.add_argument("trace_file", help="JSONL trace (from run --trace)")
    p_query.add_argument(
        "--event", help="only records about this event (base name matches "
        "both e and ~e)"
    )
    p_query.add_argument(
        "--site", help="only records at/from/to this site"
    )
    p_query.add_argument(
        "--cat",
        choices=(
            "actor", "message", "guard", "session",
            "round", "fault", "sync", "monitor",
        ),
        help="only records of this category",
    )
    p_query.add_argument("--op", help="only records with this op")
    p_query.add_argument("--kind", help="only messages of this kind")
    p_query.add_argument(
        "--since", type=float, metavar="T", help="only records with t >= T"
    )
    p_query.add_argument(
        "--until", type=float, metavar="T", help="only records with t <= T"
    )
    p_query.add_argument(
        "--latencies",
        action="store_true",
        help="per-event attempt->fire latency summary (count, mean, "
        "p50/p90/p99, max) over the matching records",
    )
    p_query.add_argument(
        "--critical-path",
        action="store_true",
        help="the causal chain ending at the last firing (of --event, "
        "if given), compressed into per-site segments",
    )
    p_query.add_argument(
        "--json", action="store_true",
        help="machine-readable output instead of text/JSONL",
    )
    p_query.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="print at most N matching records (0 = all)",
    )

    p_profile = sub.add_parser(
        "profile",
        help="run a spec under the phase profiler; print the breakdown",
    )
    p_profile.add_argument("spec")
    p_profile.add_argument(
        "--attempt",
        action="append",
        default=[],
        metavar="EVENT=TIME",
        help="scripted attempt, e.g. --attempt s_buy=0",
    )
    p_profile.add_argument("--latency", type=float, default=1.0)
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument(
        "--format",
        choices=("text", "collapsed", "chrome", "json"),
        default="text",
        help="text table (default), flamegraph collapsed stacks, "
        "chrome://tracing JSON, or raw JSON",
    )
    p_profile.add_argument(
        "-o", "--output", help="write here instead of stdout"
    )
    p_profile.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="text format: show only the top N phases by self time",
    )

    p_slo = sub.add_parser(
        "slo", help="service-level objectives over run reports"
    )
    slo_sub = p_slo.add_subparsers(dest="slo_command", required=True)
    p_slo_check = slo_sub.add_parser(
        "check",
        help="evaluate declarative thresholds against a run --json report",
    )
    p_slo_check.add_argument(
        "report_file", help="JSON report from ``repro run --json``"
    )
    p_slo_check.add_argument(
        "slo_file",
        help='SLO document: {"slos": [{"indicator"|"path", "min"/"max"}]}',
    )
    p_slo_check.add_argument(
        "--json", action="store_true",
        help="machine-readable per-rule results instead of text",
    )

    p_diff = sub.add_parser(
        "diff",
        help="causally diff two recorded traces and localize where "
        "they first diverge",
    )
    p_diff.add_argument("trace_a", help="JSONL trace (gzip transparent)")
    p_diff.add_argument("trace_b")
    p_diff.add_argument(
        "--json", action="store_true",
        help="machine-readable divergence report instead of text",
    )

    p_runs = sub.add_parser(
        "runs",
        help="the cross-run regression registry (.repro/runs)",
    )
    runs_sub = p_runs.add_subparsers(dest="runs_command", required=True)
    runs_common = argparse.ArgumentParser(add_help=False)
    runs_common.add_argument(
        "--dir", metavar="DIR",
        help="registry directory (default: .repro/runs)",
    )
    p_runs_list = runs_sub.add_parser(
        "list", parents=[runs_common], help="stored runs, oldest first"
    )
    p_runs_list.add_argument("--json", action="store_true")
    p_runs_show = runs_sub.add_parser(
        "show", parents=[runs_common],
        help="one stored run's meta, indicators, and files",
    )
    p_runs_show.add_argument(
        "run", help="run id, unique id prefix, or name"
    )
    p_runs_gc = runs_sub.add_parser(
        "gc", parents=[runs_common], help="drop the oldest stored runs"
    )
    p_runs_gc.add_argument(
        "--keep", type=int, default=20, metavar="N",
        help="how many newest runs to keep (default 20)",
    )
    p_runs_compare = runs_sub.add_parser(
        "compare", parents=[runs_common],
        help="trace-diff two stored runs (exit contract of ``diff``)",
    )
    p_runs_compare.add_argument("run_a")
    p_runs_compare.add_argument("run_b")
    p_runs_compare.add_argument("--json", action="store_true")
    p_runs_regress = runs_sub.add_parser(
        "regress", parents=[runs_common],
        help="trend indicators: newest stored run vs the best earlier "
        "value of each (lower is better)",
    )
    p_runs_regress.add_argument(
        "--indicator", action="append", default=[], metavar="NAME",
        help="indicator to trend (repeatable; default: the standard "
        "latency/message/guard set)",
    )
    p_runs_regress.add_argument(
        "--tolerance", type=float, default=0.10, metavar="R",
        help="relative slack over the best stored value (default 0.10)",
    )
    p_runs_regress.add_argument(
        "--slo", metavar="FILE",
        help="additionally gate the newest run's report on an SLO "
        "document",
    )
    p_runs_regress.add_argument("--json", action="store_true")
    return parser


def _cmd_compile(args) -> int:
    workflow = load(args.spec)
    compiled = compile_workflow(workflow)
    print(f"workflow {workflow.name}: {len(workflow.dependencies)} dependencies")
    guards = compiled.guards
    if args.minimize:
        from repro.temporal.simplify import minimize

        guards = {event: minimize(g) for event, g in guards.items()}
    print(guards_to_text(guards))
    if compiled.promise_pairs:
        for pair in sorted(compiled.promise_pairs, key=repr):
            a, b = sorted(pair)
            print(f"consensus pair: {a!r} <-> {b!r}")
    return 0


def _cmd_analyze(args) -> int:
    workflow = load(args.spec)
    report = analyze(workflow)
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_automaton(args) -> int:
    dependency = parse(args.dependency)
    print(dependency_to_dot(dependency))
    return 0


def _cmd_graph(args) -> int:
    workflow = load(args.spec)
    print(workflow_to_dot(workflow))
    return 0


def _cmd_guard(args) -> int:
    dependency = parse(args.dependency)
    event_expr = parse(args.event)
    from repro.algebra.expressions import Atom

    if not isinstance(event_expr, Atom):
        print(f"not a single event: {args.event!r}", file=sys.stderr)
        return 2
    result = synthesize_guard(dependency, event_expr.event)
    print(f"G({dependency!r}, {event_expr.event!r}) = {result!r}")
    return 0


def _parse_attempts(specs) -> list[ScriptedAttempt] | None:
    """Parse ``--attempt EVENT=TIME`` flags; None (after a message) on error."""
    attempts = []
    for spec in specs:
        name, _, time_text = spec.partition("=")
        if not time_text:
            print(f"bad --attempt (want EVENT=TIME): {spec!r}", file=sys.stderr)
            return None
        event_expr = parse(name.strip())
        from repro.algebra.expressions import Atom

        if not isinstance(event_expr, Atom):
            print(f"bad --attempt event: {name!r}", file=sys.stderr)
            return None
        attempts.append(
            ScriptedAttempt(float(time_text), event_expr.event)
        )
    return attempts


def _cmd_run(args) -> int:
    workflow = load(args.spec)
    attempts = _parse_attempts(args.attempt)
    if attempts is None:
        return 2
    scheduler_cls = SCHEDULERS[args.scheduler]
    snapshotting = args.snapshot_every is not None or args.snapshot_out
    if snapshotting and args.scheduler != "distributed":
        print(
            "--snapshot-every/--snapshot-out need --scheduler distributed",
            file=sys.stderr,
        )
        return 2
    if (args.profile or args.sample_every is not None) and (
        args.scheduler != "distributed"
    ):
        print(
            "--profile/--sample-every need --scheduler distributed",
            file=sys.stderr,
        )
        return 2
    if args.compiled_guards and args.scheduler != "distributed":
        print(
            "--compiled-guards needs --scheduler distributed",
            file=sys.stderr,
        )
        return 2
    if args.sample_every is not None and args.sample_every <= 0:
        print("--sample-every must be positive", file=sys.stderr)
        return 2
    if args.profile_out and not args.profile:
        print("--profile-out needs --profile", file=sys.stderr)
        return 2
    if args.jitter < 0:
        print("--jitter must be non-negative", file=sys.stderr)
        return 2
    if args.flight_record is not None and args.flight_record < 1:
        print("--flight-record must be at least 1", file=sys.stderr)
        return 2
    if args.flight_dump and args.flight_record is None:
        print("--flight-dump needs --flight-record", file=sys.stderr)
        return 2
    if args.runs_dir and not args.record:
        print("--runs-dir needs --record", file=sys.stderr)
        return 2
    slo_doc = None
    if args.slo:
        slo_doc = _load_json_object(args.slo)
        if slo_doc is None:
            return 2
    if args.shards is not None:
        if args.scheduler != "distributed":
            print("--shards needs --scheduler distributed", file=sys.stderr)
            return 2
        if snapshotting:
            print(
                "--shards does not support --snapshot-every/--snapshot-out "
                "(snapshots cut one scheduler's channels; shards share none)",
                file=sys.stderr,
            )
            return 2
        if args.jitter:
            print(
                "--jitter is not supported with --shards (shard latency "
                "models are planned per shard)",
                file=sys.stderr,
            )
            return 2
        if args.flight_dump:
            print(
                "--flight-dump is not supported with --shards (each shard "
                "keeps its own ring; the merged window rides in --trace)",
                file=sys.stderr,
            )
            return 2
        return _cmd_run_sharded(args, workflow, attempts, slo_doc)
    if args.flight_record is not None:
        from repro.obs.recorder import FlightRecorder

        tracer = FlightRecorder(args.flight_record, dump_path=args.flight_dump)
    elif args.json or args.trace or snapshotting or args.record:
        tracer = Tracer()
    else:
        tracer = None
    extra = {}
    if args.profile:
        from repro.obs.profile import Profiler

        extra["profiler"] = Profiler()
    if args.sample_every is not None:
        extra["sample_every"] = args.sample_every
    if args.compiled_guards:
        extra["compiled_guards"] = True
    sched = scheduler_cls(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=_latency_model(args),
        rng=random.Random(args.seed),
        tracer=tracer,
        **extra,
    )
    if args.snapshot_every is not None:
        if args.snapshot_every <= 0:
            print("--snapshot-every must be positive", file=sys.stderr)
            return 2
        sched.schedule_snapshots(args.snapshot_every)
    scripts = []
    if attempts:
        scripts.append(AgentScript("cli", attempts))
    result = sched.run(scripts, settle=not args.no_settle)
    snapshots = []
    if snapshotting:
        snapshots = [s.as_dict() for s in sched.snapshots.snapshots]
        if args.snapshot_out:
            with open(args.snapshot_out, "w", encoding="utf-8") as handle:
                json.dump(snapshots, handle, indent=2)
    report = None
    if args.json or args.slo or args.record:
        report = _run_report(
            result,
            sched.metrics_report(),
            tracer.records if tracer is not None else None,
            args.trace,
        )
    slo_failures = []
    if slo_doc is not None:
        slo_results = _evaluate_slo_gate(report, slo_doc, args.slo)
        if slo_results is None:
            return 2
        slo_failures = [r for r in slo_results if not r["ok"]]
        report["slo"] = {"ok": not slo_failures, "results": slo_results}
    if args.flight_record is not None:
        from repro.obs.check import check_records

        diags = check_records(tracer.window_records())
        if diags:
            tracer.note_anomaly(
                f"{len(diags)} checker diagnostic(s) on the retained window"
            )
        if result.violations:
            tracer.note_anomaly(
                f"{len(result.violations)} dependency violation(s)"
            )
        if result.unsettled:
            tracer.note_anomaly(f"{len(result.unsettled)} unsettled base(s)")
        for failure in slo_failures:
            tracer.note_anomaly(f"SLO failed: {failure['name']}")
        dumped = tracer.flush()
        if dumped:
            print(
                f"flight recorder: retained window dumped to {dumped}",
                file=sys.stderr,
            )
        if report is not None:
            # refresh post-flush so dumps/anomalies counters are final
            report["metrics"]["recorder"] = tracer.recorder_stats()
    if args.trace and tracer is not None:
        tracer.dump(args.trace)
    if args.prom:
        from repro.obs.prom import write_prometheus

        write_prometheus(sched.metrics_report(), args.prom)
    profile_report = (
        extra["profiler"].report() if args.profile else None
    )
    if profile_report is not None and args.profile_out:
        _write_profile(profile_report, args.profile_out, args.profile_format)
    if args.record:
        _store_run(
            args,
            report,
            tracer.window_records() if tracer is not None else None,
            profile_report,
        )
    if args.json:
        if profile_report is not None:
            report["profile"] = profile_report
        if snapshotting:
            report["snapshots"] = {
                "taken": len(snapshots),
                "complete": sum(1 for s in snapshots if s["complete"]),
                "file": args.snapshot_out,
            }
        print(json.dumps(report, indent=2))
    else:
        print(result_to_text(result))
        if snapshotting:
            complete = sum(1 for s in snapshots if s["complete"])
            print(f"snapshots: {complete}/{len(snapshots)} complete")
        if profile_report is not None and not args.profile_out:
            from repro.obs.profile import format_report

            print(format_report(profile_report))
        if result.violations:
            for violation in result.violations:
                print(f"violation[{violation.kind}]: {violation.detail}")
    # the exit contract: clean means no violations, every base settled,
    # and every --slo rule holding
    return 0 if (
        not result.violations and not result.unsettled and not slo_failures
    ) else 1


def _latency_model(args):
    """The run's delivery-latency model.

    ``--jitter J`` spreads each delivery uniformly over
    ``[latency - J, latency + J]`` (clamped at 0), drawn from the
    run's seeded rng -- without it the rng is never consulted and
    every ``--seed`` produces the same trace.
    """
    if args.jitter:
        return UniformLatency(
            max(0.0, args.latency - args.jitter), args.latency + args.jitter
        )
    return ConstantLatency(args.latency)


def _load_json_object(path: str) -> dict | None:
    """Read a JSON object from ``path``; None (after a message) on error."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            document = json.load(handle)
    except OSError as exc:
        print(f"{path}: cannot read: {exc}", file=sys.stderr)
        return None
    except json.JSONDecodeError as exc:
        print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
        return None
    if not isinstance(document, dict):
        print(f"{path}: expected a JSON object", file=sys.stderr)
        return None
    return document


def _evaluate_slo_gate(report, slo_doc, slo_path) -> list[dict] | None:
    """``run --slo``: evaluate the document against the run's report.

    Prints each failing rule to stderr; returns the per-rule results,
    or None (exit 2) for a malformed document.
    """
    from repro.obs.query import evaluate_slos

    try:
        results = evaluate_slos(report, slo_doc)
    except ValueError as exc:
        print(f"{slo_path}: {exc}", file=sys.stderr)
        return None
    for rule in results:
        if not rule["ok"]:
            print(
                f"SLO FAIL  {rule['name']}: {rule['detail']}",
                file=sys.stderr,
            )
    return results


def _store_run(args, report, records, profile_report, shards=None) -> None:
    """``run --record``: persist the finished run in the registry."""
    from repro.obs.registry import RunRegistry

    config = {
        "spec": args.spec,
        "scheduler": args.scheduler,
        "seed": args.seed,
        "latency": args.latency,
        "jitter": args.jitter,
        "attempts": list(args.attempt),
        "settle": not args.no_settle,
        "flight_record": args.flight_record,
        "shards": args.shards,
        "instances": args.instances,
    }
    registry = RunRegistry(args.runs_dir) if args.runs_dir else RunRegistry()
    meta = registry.store(
        report,
        records=records,
        profile=profile_report,
        config=config,
        shards=shards,
    )
    dedup = " (deduplicated)" if meta.get("deduplicated") else ""
    print(
        f"recorded run {meta['id']}{dedup} in {registry.root}",
        file=sys.stderr,
    )


def _write_profile(profile_report: dict, path: str, fmt: str) -> None:
    """Write a profiler report to ``path`` in the chosen format."""
    from repro.obs.profile import dump

    with open(path, "w", encoding="utf-8") as handle:
        dump(profile_report, handle, fmt)
    print(f"wrote profile ({fmt}) to {path}", file=sys.stderr)


def _run_report(result, metrics, trace_records, trace_path) -> dict:
    """The ``run --json`` payload: timeline + metrics + causal trace."""
    report = {
        "ok": result.ok,
        "makespan": result.makespan,
        "messages": result.messages,
        "timeline": [
            {
                "event": repr(entry.event),
                "time": entry.time,
                "attempted_at": entry.attempted_at,
                "outcome": entry.outcome.value,
            }
            for entry in result.entries
        ],
        "violations": [
            {"kind": v.kind, "detail": v.detail} for v in result.violations
        ],
        "unsettled": [repr(b) for b in result.unsettled],
        "metrics": metrics,
    }
    if trace_path:
        report["trace_file"] = str(trace_path)
    elif trace_records is not None:
        report["trace"] = trace_records
    return report


def _cmd_run_sharded(args, workflow, attempts, slo_doc=None) -> int:
    """``repro run --shards N``: template-instantiate and shard out.

    The spec is the *template*; ``--attempt`` scripts are template-
    level and are renamed into every instance.  The merged timeline,
    trace, and metrics honor the same contracts as a single run.
    """
    from repro.scale import instance_spec, plan_shards, run_sharded
    from repro.workflows.template import WorkflowTemplate, rename_script

    if args.shards < 1:
        print("--shards must be at least 1", file=sys.stderr)
        return 2
    count = args.instances if args.instances is not None else args.shards
    if count < 1:
        print("--instances must be at least 1", file=sys.stderr)
        return 2
    if args.workers is not None and args.workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    template = WorkflowTemplate(workflow)
    template_script = AgentScript("cli", attempts) if attempts else None
    instances = []
    for k in range(count):
        suffix = f"_i{k}"
        scripts = []
        if template_script is not None:
            scripts.append(
                rename_script(
                    template_script, template.mapping_for(suffix), suffix
                )
            )
        instances.append(instance_spec(suffix, scripts))
    tracing = bool(
        args.json or args.trace or args.record
        or args.flight_record is not None
    )
    try:
        tasks = plan_shards(
            workflow,
            instances,
            args.shards,
            seed=args.seed,
            trace=tracing,
            settle=not args.no_settle,
            latency=args.latency,
            profile=args.profile,
            sample_every=args.sample_every,
            compiled_guards=args.compiled_guards,
            placement=args.placement.replace("-", "_"),
            cross_deps=args.cross_dep,
            flight_record=args.flight_record,
        )
    except ValueError as exc:
        print(f"cannot plan shards: {exc}", file=sys.stderr)
        return 2
    sharded = run_sharded(tasks, workers=args.workers, steal=args.steal)
    result = sharded.result
    if args.trace and sharded.trace_records is not None:
        with open_trace(args.trace, "w") as handle:
            for record in sharded.trace_records:
                handle.write(json.dumps(record, sort_keys=True) + "\n")
    if args.prom:
        from repro.obs.prom import write_prometheus

        write_prometheus(sharded.metrics, args.prom)
    if sharded.profile is not None and args.profile_out:
        _write_profile(sharded.profile, args.profile_out, args.profile_format)
    report = None
    if args.json or args.slo or args.record:
        report = _run_report(
            result, sharded.metrics, sharded.trace_records, args.trace
        )
    slo_failures = []
    if slo_doc is not None:
        slo_results = _evaluate_slo_gate(report, slo_doc, args.slo)
        if slo_results is None:
            return 2
        slo_failures = [r for r in slo_results if not r["ok"]]
        report["slo"] = {"ok": not slo_failures, "results": slo_results}
    if args.record:
        shard_rows = [
            {
                "shard": outcome.shard,
                "makespan": outcome.makespan,
                "messages": outcome.messages,
                "violations": len(outcome.violations),
                "unsettled": len(outcome.unsettled),
                "trace_records": (
                    len(outcome.trace_records)
                    if outcome.trace_records is not None else None
                ),
                "recorder": outcome.metrics.get("recorder"),
            }
            for outcome in sharded.outcomes
        ]
        _store_run(
            args, report, sharded.trace_records, sharded.profile,
            shards=shard_rows,
        )
    if args.json:
        if sharded.profile is not None:
            report["profile"] = sharded.profile
        report["sharding"] = {
            "shards": sharded.shards,
            "instances": count,
            "workers": sharded.workers,
            "placement": args.placement,
            "cut_weight": getattr(tasks, "cut_weight", 0),
            "cross_messages": sharded.cross_messages,
            "steals": sharded.steals,
        }
        print(json.dumps(report, indent=2))
    else:
        print(result_to_text(result))
        extras = ""
        if args.cross_dep:
            extras += (
                f", cut {getattr(tasks, 'cut_weight', 0)}"
                f", {sharded.cross_messages} routed message(s)"
            )
        if args.steal:
            extras += f", {sharded.steals} steal(s)"
        print(
            f"sharded: {count} instances over {sharded.shards} shard(s), "
            f"{sharded.workers} worker(s){extras}"
        )
        if sharded.profile is not None and not args.profile_out:
            from repro.obs.profile import format_report

            print(format_report(sharded.profile))
        if result.violations:
            for violation in result.violations:
                print(f"violation[{violation.kind}]: {violation.detail}")
    return 0 if (
        not result.violations and not result.unsettled and not slo_failures
    ) else 1


def _cmd_trace(args) -> int:
    if args.trace_command == "query":
        return _cmd_trace_query(args)
    if args.trace_command == "check":
        try:
            count, diagnostics = check_file(args.trace_file)
        except OSError as exc:
            print(f"{args.trace_file}: cannot read: {exc}", file=sys.stderr)
            return 2
        if count == 0 and not diagnostics:
            print(
                f"{args.trace_file}: empty trace (no records); nothing "
                "to verify -- was the run traced?",
                file=sys.stderr,
            )
            return 1
        if not diagnostics:
            print(f"{args.trace_file}: {count} records, all invariants hold")
            return 0
        print(
            f"{args.trace_file}: {len(diagnostics)} violation(s) "
            f"in {count} records",
            file=sys.stderr,
        )
        for diagnostic in diagnostics:
            print(str(diagnostic), file=sys.stderr)
        return 1
    # export
    try:
        records = read_jsonl(args.trace_file)
    except OSError as exc:
        print(f"{args.trace_file}: cannot read: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"{args.trace_file}: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(
            f"{args.trace_file}: empty trace (no records); nothing to "
            "export",
            file=sys.stderr,
        )
        return 1
    chrome = to_chrome(records)
    text = json.dumps(chrome)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {len(chrome['traceEvents'])} events to {args.output}")
    else:
        print(text)
    return 0


def _cmd_trace_query(args) -> int:
    """``repro trace query``: filter + offline analytics over a trace.

    Exit contract (satellite of ``trace check``): 0 with results; 1
    when the trace is empty, nothing matches the filter, or the
    requested analysis has no data (so scripts notice silence instead
    of blessing it); 2 on unreadable files.
    """
    from repro.obs.query import critical_path, filter_records, latency_summary

    try:
        records = read_jsonl(args.trace_file)
    except OSError as exc:
        print(f"{args.trace_file}: cannot read: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"{args.trace_file}: {exc}", file=sys.stderr)
        return 1
    if not records:
        print(
            f"{args.trace_file}: empty trace (no records); nothing to "
            "query -- was the run traced (run --trace FILE)?",
            file=sys.stderr,
        )
        return 1
    matched = filter_records(
        records,
        event=args.event,
        site=args.site,
        cat=args.cat,
        op=args.op,
        kind=args.kind,
        since=args.since,
        until=args.until,
    )
    if not matched:
        print(
            f"{args.trace_file}: 0 of {len(records)} records match the "
            "filter",
            file=sys.stderr,
        )
        return 1
    analytics = args.latencies or args.critical_path
    out: dict = {"records": len(records), "matched": len(matched)}
    if args.latencies:
        summary = latency_summary(matched)
        if not summary:
            print(
                "no attempt->fire pairs among the matching records",
                file=sys.stderr,
            )
            return 1
        out["latencies"] = summary
    if args.critical_path:
        # causality needs the *whole* trace: a filtered-out send on
        # another site may still carry the chain
        segments = critical_path(records, event=args.event)
        if not segments:
            print("nothing fired; no critical path", file=sys.stderr)
            return 1
        out["critical_path"] = segments
    shown = matched if args.limit <= 0 else matched[: args.limit]
    if args.json:
        if not analytics:
            out["events"] = shown
        print(json.dumps(out, indent=2))
        return 0
    if args.latencies:
        header = f"{'event':<24} {'count':>5} {'mean':>8} "
        header += f"{'p50':>8} {'p90':>8} {'p99':>8} {'max':>8}"
        print(header)
        for event, stats in out["latencies"].items():
            print(
                f"{event:<24} {stats['count']:>5} {stats['mean']:>8.3f} "
                f"{stats['p50']:>8.3f} {stats['p90']:>8.3f} "
                f"{stats['p99']:>8.3f} {stats['max']:>8.3f}"
            )
    if args.critical_path:
        print("critical path (earliest segment first):")
        for seg in out["critical_path"]:
            via = (
                f" <- {seg['via_kind']} #{seg['via_mid']}"
                if seg["via_kind"] else ""
            )
            print(
                f"  {seg['site']}: t={seg['from_t']:g}..{seg['to_t']:g} "
                f"({seg['records']} records){via}"
            )
    if not analytics:
        for record in shown:
            print(json.dumps(record, sort_keys=True))
        print(
            f"{len(matched)} of {len(records)} records match",
            file=sys.stderr,
        )
    return 0


def _cmd_profile(args) -> int:
    """``repro profile``: one profiled distributed run of a spec."""
    from repro.obs.profile import Profiler, dump, format_report

    workflow = load(args.spec)
    attempts = _parse_attempts(args.attempt)
    if attempts is None:
        return 2
    profiler = Profiler()
    sched = DistributedScheduler(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=ConstantLatency(args.latency),
        rng=random.Random(args.seed),
        profiler=profiler,
    )
    scripts = [AgentScript("cli", attempts)] if attempts else []
    sched.run(scripts)
    report = profiler.report()
    if args.output:
        _write_profile(report, args.output, args.format)
        return 0
    if args.format == "text":
        print(format_report(report, limit=args.limit))
    else:
        dump(report, sys.stdout, args.format)
    return 0


def _cmd_slo(args) -> int:
    """``repro slo check``: gate a ``run --json`` report on thresholds.

    Exit contract: 0 when every rule passes; 1 when any rule fails
    (including "no data" -- an empty report must not pass a latency
    gate); 2 on unreadable files or a malformed SLO document.
    """
    from repro.obs.query import evaluate_slos

    documents = []
    for path in (args.report_file, args.slo_file):
        try:
            with open(path, "r", encoding="utf-8") as handle:
                document = json.load(handle)
        except OSError as exc:
            print(f"{path}: cannot read: {exc}", file=sys.stderr)
            return 2
        except json.JSONDecodeError as exc:
            print(f"{path}: not valid JSON: {exc}", file=sys.stderr)
            return 2
        if not isinstance(document, dict):
            print(f"{path}: expected a JSON object", file=sys.stderr)
            return 2
        documents.append(document)
    report, slo_doc = documents
    try:
        results = evaluate_slos(report, slo_doc)
    except ValueError as exc:
        print(f"{args.slo_file}: {exc}", file=sys.stderr)
        return 2
    failures = [r for r in results if not r["ok"]]
    if args.json:
        print(json.dumps(
            {"ok": not failures, "results": results}, indent=2
        ))
        return 0 if not failures else 1
    for r in results:
        status = "PASS" if r["ok"] else "FAIL"
        print(f"{status}  {r['name']}: {r['detail']}")
    if failures:
        print(
            f"{len(failures)} of {len(results)} SLO rule(s) failed",
            file=sys.stderr,
        )
        return 1
    print(f"all {len(results)} SLO rule(s) hold")
    return 0


def _cmd_explain(args) -> int:
    from repro.obs.provenance import explain_records

    try:
        records = read_jsonl(args.trace_file)
    except OSError as exc:
        print(f"{args.trace_file}: cannot read: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"{args.trace_file}: {exc}", file=sys.stderr)
        return 2
    if not records:
        print(
            f"{args.trace_file}: empty trace (no records); nothing to "
            "explain",
            file=sys.stderr,
        )
        return 2
    try:
        explanation = explain_records(records, args.event)
    except KeyError:
        print(
            f"{args.event!r} never appears in {args.trace_file} "
            "(no actor or guard records); check the event name",
            file=sys.stderr,
        )
        return 1
    if args.json:
        print(json.dumps(explanation.to_dict(), indent=2))
    else:
        print(explanation.render())
    return 0


def _cmd_prom(args) -> int:
    from repro.obs.prom import lint_prometheus

    try:
        with open(args.prom_file, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"{args.prom_file}: cannot read: {exc}", file=sys.stderr)
        return 2
    problems = lint_prometheus(text)
    if not problems:
        samples = sum(
            1
            for line in text.splitlines()
            if line.strip() and not line.startswith("#")
        )
        print(f"{args.prom_file}: {samples} samples, format OK")
        return 0
    print(f"{args.prom_file}: {len(problems)} problem(s)", file=sys.stderr)
    for problem in problems:
        print(problem, file=sys.stderr)
    return 1


def _cmd_diff(args) -> int:
    """``repro diff A B``: causally align two traces, localize divergence.

    Exit contract: 0 when causally identical (volatile fields --
    Lamport counters, message ids, wall-clock guard timings -- are
    ignored, so a same-seed re-run diffs clean); 1 when divergent,
    naming the first divergent event per site, classifying the
    divergence, and printing the root-cause chain back through the
    causal machinery; 2 when either trace is empty, unreadable, or
    structurally unusable.
    """
    from repro.obs.diff import diff_files

    try:
        diff = diff_files(args.trace_a, args.trace_b)
    except OSError as exc:
        print(f"cannot read: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"unusable trace: {exc}", file=sys.stderr)
        return 2
    if diff.records_a == 0 or diff.records_b == 0:
        for path, count in (
            (args.trace_a, diff.records_a), (args.trace_b, diff.records_b)
        ):
            if count == 0:
                print(
                    f"{path}: empty trace (no records); nothing to diff "
                    "-- was the run traced?",
                    file=sys.stderr,
                )
        return 2
    if args.json:
        print(json.dumps(diff.as_dict(), indent=2))
    else:
        print(diff.summary())
    return 0 if diff.identical else 1


def _cmd_runs(args) -> int:
    """``repro runs ...``: the cross-run regression registry.

    ``list``/``show``/``gc`` manage the store; ``compare`` trace-diffs
    two stored runs (exit contract of ``repro diff``); ``regress``
    trends the standard indicators, newest stored run against the best
    earlier value of each (0 holds, 1 regressed, 2 too little history).
    """
    import datetime

    from repro.obs.registry import RunRegistry

    registry = RunRegistry(args.dir) if args.dir else RunRegistry()

    def stamp(created) -> str:
        if not created:
            return "-"
        return datetime.datetime.fromtimestamp(created).strftime(
            "%Y-%m-%d %H:%M:%S"
        )

    if args.runs_command == "list":
        metas = registry.list_runs()
        if args.json:
            print(json.dumps(metas, indent=2))
            return 0
        if not metas:
            print(f"no stored runs in {registry.root}")
            return 0
        print(
            f"{'id':<12} {'created':<19} {'ok':<3} {'makespan':>8} "
            f"{'msgs':>6} {'viol':>4} {'uns':>4}  name"
        )
        for meta in metas:
            summary = meta.get("summary", {})
            print(
                f"{meta['id']:<12} {stamp(meta.get('created')):<19} "
                f"{'yes' if summary.get('ok') else 'no':<3} "
                f"{summary.get('makespan', 0):>8g} "
                f"{summary.get('messages', 0):>6} "
                f"{summary.get('violations', 0):>4} "
                f"{summary.get('unsettled', 0):>4}  "
                f"{meta.get('name') or '-'}"
            )
        return 0

    if args.runs_command == "show":
        try:
            shown = registry.show(args.run)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 1
        print(json.dumps(shown, indent=2))
        return 0

    if args.runs_command == "gc":
        if args.keep < 0:
            print("--keep must be non-negative", file=sys.stderr)
            return 2
        removed = registry.gc(args.keep)
        print(
            f"removed {len(removed)} run(s), kept "
            f"{len(registry.list_runs())} in {registry.root}"
        )
        for run_id in removed:
            print(f"  {run_id}")
        return 0

    if args.runs_command == "compare":
        try:
            diff = registry.compare(args.run_a, args.run_b)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        except (OSError, ValueError) as exc:
            print(f"cannot compare: {exc}", file=sys.stderr)
            return 2
        if args.json:
            print(json.dumps(diff.as_dict(), indent=2))
        else:
            print(diff.summary())
        return 0 if diff.identical else 1

    # regress
    slo_doc = None
    if args.slo:
        slo_doc = _load_json_object(args.slo)
        if slo_doc is None:
            return 2
    try:
        outcome = registry.regress(
            indicators=args.indicator or None,
            tolerance=args.tolerance,
            slo_doc=slo_doc,
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(outcome, indent=2))
        return 1 if outcome["regressed"] else 0
    latest = outcome["latest"]
    print(
        f"latest run {latest['id']} vs best of "
        f"{outcome['baseline_runs']} earlier run(s):"
    )
    for row in outcome["indicators"]:
        status = "PASS" if row["ok"] else "FAIL"
        print(f"{status}  {row['indicator']}: {row['detail']}")
    for rule in outcome.get("slo", []):
        status = "PASS" if rule["ok"] else "FAIL"
        print(f"{status}  slo:{rule['name']}: {rule['detail']}")
    if outcome["regressed"]:
        print("regression detected", file=sys.stderr)
        return 1
    print("no regression")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handler = {
        "compile": _cmd_compile,
        "analyze": _cmd_analyze,
        "automaton": _cmd_automaton,
        "graph": _cmd_graph,
        "guard": _cmd_guard,
        "run": _cmd_run,
        "trace": _cmd_trace,
        "explain": _cmd_explain,
        "prom": _cmd_prom,
        "profile": _cmd_profile,
        "slo": _cmd_slo,
        "diff": _cmd_diff,
        "runs": _cmd_runs,
    }[args.command]
    try:
        return handler(args)
    except BrokenPipeError:  # piped into head & co.
        return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Distributed execution of parametrized dependencies (Section 5.2).

The synchronous :class:`~repro.params.scheduler.ParamScheduler`
isolates the Section 5 *reasoning*; this module closes the loop by
running parametrized specifications on the distributed guard
scheduler.  The trick is composition: ground dependency instances are
materialized lazily -- whenever a token with new parameter values is
attempted -- through the scheduler's run-time modification machinery
(``add_dependency_runtime``), which residuates each new instance by
history, synthesizes guards for its events, spins up their actors, and
wires subscriptions.  Guards thereby "grow" exactly as Example 14
describes, and tasks with loops just keep minting tokens.
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.algebra.expressions import Expr
from repro.algebra.parser import parse
from repro.algebra.symbols import Event, Variable
from repro.scheduler.events import EventAttributes, ExecutionResult
from repro.scheduler.guard_scheduler import DistributedScheduler


class DistributedParamRunner:
    """Parametrized dependencies on the distributed scheduler.

    Parameters
    ----------
    templates:
        Parametrized dependencies (strings or expressions); unbound
        variables are universally quantified over token values.
    attributes:
        Per *event-type name* attributes (applied to every ground
        instance of that type).
    tracer / metrics / provenance:
        Observability hooks, forwarded to the underlying
        :class:`DistributedScheduler` (see :mod:`repro.obs`).
    """

    def __init__(
        self,
        templates: Iterable[Expr | str],
        attributes: dict[str, EventAttributes] | None = None,
        tracer=None,
        metrics=None,
        provenance: bool | None = None,
        watch_mode: bool = True,
        compiled_guards: bool = False,
    ):
        self.templates: list[Expr] = [
            parse(t) if isinstance(t, str) else t for t in templates
        ]
        self._type_attributes = dict(attributes or {})
        self._seen_values: set = set()
        self._materialized: set = set()
        self.sched = DistributedScheduler(
            [], attributes={}, tracer=tracer, metrics=metrics,
            provenance=provenance, watch_mode=watch_mode,
            compiled_guards=compiled_guards,
        )
        # per-name attributes are resolved lazily per ground base
        self.sched.attributes = self._attributes_for  # type: ignore[assignment]

    # ------------------------------------------------------------------

    def _attributes_for(self, base: Event) -> EventAttributes:
        return self._type_attributes.get(base.name, EventAttributes())

    def _materialize_for_values(self, values: tuple) -> None:
        """Ground every template over bindings drawn from the values
        seen so far (plus the new ones) and install new instances."""
        self._seen_values.update(values)
        pool = sorted(self._seen_values, key=repr)
        for template in self.templates:
            variables = sorted(
                {v for atom in template.events() for v in atom.variables},
                key=lambda v: v.name,
            )
            if not variables:
                combos: Iterable[tuple] = [()]
            else:
                combos = itertools.product(pool, repeat=len(variables))
            for combo in combos:
                binding = dict(zip(variables, combo))
                instance = template.substitute(binding)
                key = (id(template), combo)
                if key in self._materialized:
                    continue
                self._materialized.add(key)
                self.sched.add_dependency_runtime(instance)

    # ------------------------------------------------------------------

    def attempt(self, token: Event) -> None:
        """Attempt a ground token; instances materialize as needed."""
        if not token.is_ground:
            raise ValueError(f"attempts must be ground tokens: {token!r}")
        self._materialize_for_values(token.params)
        if token not in self.sched.actors:
            # the token matches no template: unconstrained event
            from repro.scheduler.actors import EventActor
            from repro.temporal.cubes import TRUE_GUARD

            self.sched.actors[token] = EventActor(
                token, TRUE_GUARD, self.sched.site_of(token.base), self.sched
            )
        self.sched.attempt(token)
        self.sched.sim.run()

    def explain(self, token: Event):
        """Decision provenance for a ground token (see
        :meth:`DistributedScheduler.explain`)."""
        return self.sched.explain(token)

    def finish(self, verify: bool = True) -> ExecutionResult:
        """Settle the trace and return the result."""
        return self.sched.run(settle=True, verify=verify)

    @property
    def trace(self):
        return self.sched.result.trace

"""Intra-workflow parametrization (paper Section 5.1, Example 12).

The simplest use of parameters binds all of a workflow's events to the
same key: "attempting some key event binds the parameters of all
events, thus instantiating the workflow afresh.  The workflow is then
scheduled as described in previous sections."  A
:class:`ParametrizedWorkflow` is that template: dependencies written
over variable-carrying atoms, instantiated into ordinary (ground)
workflows per binding and run on the ordinary schedulers.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import Expr
from repro.algebra.parser import parse
from repro.algebra.symbols import Event, Variable
from repro.scheduler.events import EventAttributes
from repro.workflows.spec import Workflow


@dataclass
class ParametrizedWorkflow:
    """A workflow template over parametrized events.

    >>> t = ParametrizedWorkflow("travel")
    >>> _ = t.add("~s_buy[cid] + s_book[cid]")
    >>> w = t.instantiate(cid="c42")
    >>> w.dependencies[0]
    s_book['c42'] + ~s_buy['c42']
    """

    name: str
    dependencies: list[Expr] = field(default_factory=list)
    attributes: dict[Event, EventAttributes] = field(default_factory=dict)
    sites: dict[Event, str] = field(default_factory=dict)

    def add(self, dependency: Expr | str) -> Expr:
        expr = parse(dependency) if isinstance(dependency, str) else dependency
        self.dependencies.append(expr)
        return expr

    def set_attributes(self, event: Event, **kwargs) -> None:
        self.attributes[event.base] = EventAttributes(**kwargs)

    def place(self, event: Event, site: str) -> None:
        self.sites[event.base] = site

    def variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for dep in self.dependencies:
            for ev in dep.events():
                out.update(ev.variables)
        return frozenset(out)

    def instantiate(self, **values) -> Workflow:
        """Bind every variable and produce a ground workflow.

        The binding also flows into event attributes and site
        placements (so instance ``c42`` gets its own actors at the
        same logical sites, suffixed per instance).
        """
        binding = {Variable(name): value for name, value in values.items()}
        missing = self.variables() - set(binding)
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"unbound workflow parameters: {names}")
        tag = "_".join(str(v) for v in values.values())
        ground = Workflow(f"{self.name}[{tag}]")
        for dep in self.dependencies:
            ground.add(dep.substitute(binding))
        for event, attrs in self.attributes.items():
            ground.attributes[event.substitute(binding).base] = attrs
        for event, site in self.sites.items():
            ground.sites[event.substitute(binding).base] = f"{site}[{tag}]"
        return ground

"""Admission scheduling over parametrized dependencies (Section 5.2).

The :class:`ParamScheduler` is the reasoning engine behind Example 13:
dependencies range over event *types* (``b1[x]``, ``b2[y]``); tokens
are ground occurrences; unbound variables are universally quantified.
Guards are synthesized once per event type by the ordinary Definition
2 machinery -- parametrized atoms are perfectly good atoms for the
symbolic computation -- and evaluated per attempt by enumerating the
bindings that matter: those named by tokens seen so far, plus a fresh
binding standing for all untouched values.

The engine is synchronous (a direct admission test, no simulated
network): it isolates Section 5's *reasoning* contribution.  The
distributed execution of ground instances is Example 12's territory
and reuses the ordinary schedulers via
:class:`~repro.params.workflows.ParametrizedWorkflow`.

Tasks of arbitrary structure come for free: a looping task simply
produces tokens ``b[i]`` with fresh ids, and nothing here bounds how
many (Section 5.2: "if we can handle parameters correctly, we can
handle arbitrary tasks correctly!").
"""

from __future__ import annotations

import itertools
from typing import Iterable

from repro.algebra.expressions import Expr
from repro.algebra.parser import parse
from repro.algebra.symbols import Event, Variable
from repro.params.guards import FreshValue
from repro.temporal.cubes import C_OCC, E_OCC, GuardExpr
from repro.temporal.guards import guard as synthesize_guard


class ParamScheduler:
    """Synchronous admission over parametrized dependencies.

    Admission semantics: a token may occur iff, after materializing
    every ground instance of every dependency over the bindings that
    matter (token values seen so far plus a fresh value per variable)
    and residuating them by the history, the state reached by the
    token still has a *joint* accepting completion.  This is the
    dependency-centric acceptance rule of Section 3.3 lifted to event
    types; the per-event guard view of the same decisions is exposed
    by :meth:`guard_instance` (used by the Example 14 walkthrough).
    """

    def __init__(self, dependencies: Iterable[Expr | str] = ()):
        self.dependencies: list[Expr] = []
        self._guards: dict[Event, GuardExpr] = {}
        self._occurred: dict[Event, int] = {}  # ground base -> E/C mask
        self._promised: dict[Event, int] = {}  # ground base -> DIA mask
        self.trace: list[Event] = []
        for dep in dependencies:
            self.add_dependency(dep)

    # ------------------------------------------------------------------
    # setup

    def add_dependency(self, dependency: Expr | str) -> Expr:
        expr = parse(dependency) if isinstance(dependency, str) else dependency
        self.dependencies.append(expr)
        self._guards.clear()  # recompile lazily
        return expr

    def _guard_for_type(self, event_type: Event) -> GuardExpr:
        cached = self._guards.get(event_type)
        if cached is not None:
            return cached
        total = None
        for dep in self.dependencies:
            if not any(
                a.name == event_type.name for a in dep.bases()
            ):
                continue
            g = synthesize_guard(dep, event_type)
            total = g if total is None else (total & g)
        from repro.temporal.cubes import TRUE_GUARD

        result = total if total is not None else TRUE_GUARD
        self._guards[event_type] = result
        return result

    def _event_types(self) -> dict[str, Event]:
        types: dict[str, Event] = {}
        for dep in self.dependencies:
            for atom in dep.events():
                if not atom.negated:
                    types.setdefault(atom.name, atom)
        return types

    # ------------------------------------------------------------------
    # runtime

    def allowed(self, token: Event) -> bool:
        """May this ground token occur now?

        Residuate every materialized dependency instance by the token
        and check the joint state still has an accepting completion
        over the unsettled (and universally quantified) remainder.
        """
        if not token.is_ground:
            raise ValueError(f"attempts must be ground tokens: {token!r}")
        if token.base in self._occurred:
            return False  # a token occurs at most once (Definition 1)
        from repro.algebra.residuation import residuate
        from repro.scheduler.residuation_scheduler import joint_completion_exists

        state = []
        for instance in self._residual_instances(extra_values=token.params):
            after = residuate(instance, token)
            state.append(after)
        return joint_completion_exists(tuple(state))

    def guard_instance(self, event_type: Event) -> GuardExpr:
        """The synthesized guard template of an event type (Definition 2
        applied to parametrized atoms)."""
        return self._guard_for_type(event_type)

    def _residual_instances(self, extra_values: tuple = ()):
        """Ground every dependency over the bindings that matter and
        residuate by the history; discharged instances are dropped."""
        from repro.algebra.expressions import Top, Zero
        from repro.algebra.residuation import residuate

        seen_values = set(extra_values)
        for ground in self._occurred:
            seen_values.update(ground.params)
        for dep in self.dependencies:
            variables = sorted(
                {v for atom in dep.events() for v in atom.variables},
                key=lambda v: v.name,
            )
            pools = [
                sorted(seen_values, key=repr) + [FreshValue()] for _ in variables
            ]
            for combo in itertools.product(*pools) if variables else [()]:
                binding = dict(zip(variables, combo))
                instance = dep.substitute(binding)
                for past in self.trace:
                    instance = residuate(instance, past)
                    if isinstance(instance, (Top, Zero)):
                        break
                if isinstance(instance, Top):
                    continue
                yield instance

    def occur(self, token: Event) -> None:
        """Record an occurrence (caller should have checked ``allowed``)."""
        if token.base in self._occurred:
            raise ValueError(f"token occurred twice: {token!r}")
        self._occurred[token.base] = C_OCC if token.negated else E_OCC
        self.trace.append(token)

    def attempt(self, token: Event) -> bool:
        """``allowed`` + ``occur`` in one step; returns the decision."""
        if self.allowed(token):
            self.occur(token)
            return True
        return False


    # ------------------------------------------------------------------
    # internals



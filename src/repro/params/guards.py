"""Parametrized guards with growing/shrinking instance maps (Example 14).

A parametrized guard is a guard template over variable-carrying atoms.
Unbound variables are universally quantified: the guard must hold for
*every* binding.  Operationally only finitely many bindings ever
matter -- those named by tokens that actually occurred -- plus the
"fresh" binding standing for all untouched values, so the guard is
maintained as a map from touched bindings to residual ground guards:

* a token occurrence *grows* the map (a new binding's instance is
  materialized and the occurrence assimilated into it);
* an instance that simplifies to ``T`` is dropped -- the guard
  *shrinks* back, possibly *resurrecting* an event that was blocked
  (Example 14's ``!f[y] + []g[y]`` cycle);
* evaluation conjoins all live instances with the fresh-binding check.

This is what makes tasks of arbitrary structure (loops included)
schedulable: nothing here depends on how many tokens a task will
produce (Section 5.2).
"""

from __future__ import annotations

import itertools

from repro.algebra.symbols import Event, Variable
from repro.temporal.cubes import (
    C_OCC,
    E_OCC,
    FULL,
    GuardExpr,
    P_C,
    P_E,
)

#: The world mask of a base no token has settled: pending, direction
#: unknown.
PENDING = P_E | P_C


class FreshValue:
    """A sentinel parameter value no real token ever carries.

    Used to check the universally quantified remainder: the guard must
    hold for bindings nobody has touched, whose events are all still
    pending.
    """

    _counter = itertools.count()

    def __init__(self):
        self._id = next(FreshValue._counter)

    def __repr__(self) -> str:
        return f"<fresh#{self._id}>"


class ParametrizedGuard:
    """A guard template plus its live instance map.

    Parameters
    ----------
    template:
        A :class:`GuardExpr` whose cube keys are parametrized base
        events (possibly carrying :class:`Variable` parameters).
    """

    def __init__(self, template: GuardExpr):
        self.template = template
        self.instances: dict[tuple, GuardExpr] = {}
        self.history: list[tuple[str, tuple]] = []
        self._knowledge: dict[Event, int] = {}

    # -- inspection ----------------------------------------------------

    def variables(self) -> frozenset[Variable]:
        out: set[Variable] = set()
        for base in self.template.bases():
            out.update(base.variables)
        return frozenset(out)

    def live_instances(self) -> dict[tuple, GuardExpr]:
        return dict(self.instances)

    # -- occurrences ---------------------------------------------------

    def observe(self, token: Event) -> None:
        """Assimilate a ground token occurrence.

        Every template base that unifies with the token's base yields
        a binding; each such binding's instance is materialized (grown)
        if needed and then simplified under the new knowledge.  An
        instance reduced to ``T`` is dropped (shrunk).
        """
        mask = C_OCC if token.negated else E_OCC
        self._knowledge[token.base] = mask
        for base in self.template.bases():
            binding = base.unify(token.base)
            if binding is None:
                continue
            key = self._binding_key(binding)
            if key not in self.instances:
                ground = self._instantiate(binding)
                self.instances[key] = ground
                self.history.append(("grow", key))
            updated = self.instances[key].simplify_under(self._knowledge)
            if updated.is_true:
                del self.instances[key]
                self.history.append(("shrink", key))
            else:
                self.instances[key] = updated

    # -- evaluation ----------------------------------------------------

    def holds_now(self) -> bool:
        """Is the guard true for every binding, right now?

        Live instances are checked under accumulated knowledge; the
        universally quantified remainder is checked via a fresh
        binding whose events are all pending.
        """
        for instance in self.instances.values():
            if not instance.region_subsumes(self._world_masks(instance)):
                return False
        fresh = self._instantiate(
            {v: FreshValue() for v in self.variables()}
        )
        return fresh.region_subsumes(self._world_masks(fresh))

    def _world_masks(self, instance: GuardExpr) -> dict[Event, int]:
        return {
            base: self._knowledge.get(base, PENDING)
            for base in instance.bases()
        }

    # -- internals -----------------------------------------------------

    @staticmethod
    def _binding_key(binding: dict) -> tuple:
        return tuple(
            (var.name, value)
            for var, value in sorted(binding.items(), key=lambda kv: kv[0].name)
        )

    def _instantiate(self, binding: dict) -> GuardExpr:
        return instantiate_template(self.template, binding)


def instantiate_template(template: GuardExpr, binding: dict) -> GuardExpr:
    """Apply a variable binding to every cube of a guard template."""
    cubes = set()
    for cube in template.cubes:
        entries: dict[Event, int] = {}
        dead = False
        for base, mask in cube:
            ground = base.substitute(binding)
            combined = entries.get(ground, FULL) & mask
            if combined == 0:
                dead = True
                break
            entries[ground] = combined
        if dead:
            continue
        cubes.add(
            tuple(
                sorted(
                    ((b, m) for b, m in entries.items() if m != FULL),
                    key=lambda kv: kv[0].sort_key(),
                )
            )
        )
    return GuardExpr(frozenset(cubes))

"""Parametrized events and guards (paper Section 5).

Event atoms carry a tuple of parameters (task ids, database keys,
customer ids); a parameter may be a :class:`~repro.algebra.symbols.Variable`,
in which case the atom is an event *type* and its ground occurrences
are *tokens*.  Unbound parameters in a guard are universally
quantified (Section 5.2), which is what lets dependencies constrain
tasks of arbitrary structure -- including loops -- without the
scheduler knowing the tasks' internal structure.

* :mod:`repro.params.workflows` -- intra-workflow parametrization
  (Example 12): a workflow template instantiated per key binding.
* :mod:`repro.params.guards` -- parametrized guards whose instance
  maps grow, shrink, and resurrect as tokens occur (Example 14).
* :mod:`repro.params.scheduler` -- a synchronous admission engine over
  parametrized dependencies (Example 13's inter-workflow mutual
  exclusion across looping tasks).
"""

from repro.params.distributed import DistributedParamRunner
from repro.params.guards import FreshValue, ParametrizedGuard
from repro.params.scheduler import ParamScheduler
from repro.params.workflows import ParametrizedWorkflow

__all__ = [
    "DistributedParamRunner",
    "FreshValue",
    "ParamScheduler",
    "ParametrizedGuard",
    "ParametrizedWorkflow",
]

"""The centralized dependency-centric baseline (Sections 3.3-3.4).

This is the scheduler the paper develops first and then argues away
from: the dependencies live at a single site whose state is the tuple
of residual expressions (Figure 2).  Every attempt is a round trip --
agent site -> center -> agent site -- and the center serializes its
decisions (a configurable per-decision service time), which is the
bottleneck the distributed scheduler removes.

Decision rule on an attempt of ``e``:

* accept iff, for every dependency, the residual after ``e`` still has
  an accepting completion over the unsettled alphabet (Definition 3);
* otherwise park; parked events are re-examined after each occurrence;
* parked events whose residual can never recover are rejected, and the
  agent settles the complement.

Triggerable events are caused by the same requirement rule the
distributed monitors use (every accepting completion contains them) --
naturally computed here, since the center holds all residuals.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.algebra.expressions import Atom, Choice, Conj, Expr, Seq, Top, Zero
from repro.algebra.normal_form import to_normal_form
from repro.algebra.residuation import residuate
from repro.algebra.symbols import Event
from repro.scheduler.agents import AgentScript
from repro.scheduler.events import (
    AttemptOutcome,
    EventAttributes,
    ExecutionResult,
    TraceEntry,
    Violation,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import NULL_TRACER
from repro.sim.clock import Simulator
from repro.sim.network import LatencyModel, Network
from repro.temporal.guards import accepting_paths
from repro.temporal.watch import WatchIndex

_DEFAULT_ATTRS = EventAttributes()

CENTER = "center"


def has_accepting_completion(residual: Expr, settled_bases: frozenset[Event]) -> bool:
    """Does any completion over unsettled events discharge the residual?"""
    if isinstance(residual, Top):
        return True
    if isinstance(residual, Zero):
        return False
    return any(
        all(ev.base not in settled_bases for ev in path)
        for path in accepting_paths(residual, minimal=True)
    )


def expression_terms(expr: Expr):
    """The DNF reading of a normal-form expression.

    Yields ``(events, edges)`` per disjunct: the signed events that
    must occur and the ordered pairs among them (sequence order).
    Inconsistent disjuncts (an event with its complement) are skipped.
    Satisfaction of such a term is monotone under inserting foreign
    events anywhere, so a trace satisfies the expression iff it covers
    some term's events in some linearization of its edges.
    """
    from itertools import product as _product

    if isinstance(expr, Zero):
        return
    if isinstance(expr, Top):
        yield frozenset(), ()
        return
    if isinstance(expr, Atom):
        yield frozenset({expr.event}), ()
        return
    if isinstance(expr, Seq):
        atoms = tuple(p.event for p in expr.parts)
        yield frozenset(atoms), tuple(zip(atoms, atoms[1:]))
        return
    if isinstance(expr, Choice):
        for part in expr.parts:
            yield from expression_terms(part)
        return
    if isinstance(expr, Conj):
        option_lists = [list(expression_terms(p)) for p in expr.parts]
        for combo in _product(*option_lists):
            events: set[Event] = set()
            edges: list = []
            consistent = True
            for evs, eds in combo:
                events |= evs
                edges.extend(eds)
            for ev in events:
                if ev.complement in events:
                    consistent = False
                    break
            if consistent:
                yield frozenset(events), tuple(edges)
        return
    raise TypeError(f"unknown expression: {expr!r}")  # pragma: no cover


def _edges_acyclic(edges: Iterable[tuple[Event, Event]]) -> bool:
    graph: dict[Event, list[Event]] = {}
    for src, dst in edges:
        graph.setdefault(src, []).append(dst)
    state: dict[Event, int] = {}

    def visit(node: Event) -> bool:
        mark = state.get(node, 0)
        if mark == 1:
            return False  # back edge
        if mark == 2:
            return True
        state[node] = 1
        for nxt in graph.get(node, ()):
            if not visit(nxt):
                return False
        state[node] = 2
        return True

    return all(visit(node) for node in list(graph))


def joint_completion_exists(
    residuals: tuple[Expr, ...],
    require: Event | None = None,
    allowed_positive: frozenset[Event] | None = None,
) -> bool:
    """Can all residuals be discharged by one shared completion?

    Per-dependency satisfiability is not enough: two residuals may
    individually admit completions that contradict each other on a
    shared event (mutual exclusion is the canonical case).  A joint
    completion exists iff each residual can select one DNF term such
    that the selected sign requirements are consistent across
    residuals and the union of their sequence constraints is acyclic
    -- exact for this algebra because term satisfaction is monotone
    under inserting foreign events.  ``require`` restricts the check
    to completions containing the given signed event.

    ``allowed_positive`` restricts which *positive* events a
    completion may rely on: a scheduler can always settle a base
    negatively (the task abandons the transition) but cannot conjure a
    positive occurrence unless the event is pending, triggerable, or
    guaranteed -- passing that set makes acceptance honest about
    attainability.
    """
    live: list[Expr] = []
    for r in residuals:
        nf = to_normal_form(r)
        if isinstance(nf, Zero):
            return False
        if not isinstance(nf, Top):
            live.append(nf)

    def usable(term) -> bool:
        if allowed_positive is None:
            return True
        events, _edges = term
        return all(ev.negated or ev in allowed_positive for ev in events)

    term_lists = [
        [t for t in expression_terms(r) if usable(t)] for r in live
    ]
    if require is not None:
        term_lists.append([(frozenset({require}), ())])
    if any(not terms for terms in term_lists):
        return False
    term_lists.sort(key=len)

    def backtrack(index: int, signs: dict[Event, Event], edges: tuple) -> bool:
        if index == len(term_lists):
            return _edges_acyclic(edges)
        for events, term_edges in term_lists[index]:
            chosen = dict(signs)
            conflict = False
            for ev in events:
                previous = chosen.get(ev.base)
                if previous is not None and previous != ev:
                    conflict = True
                    break
                chosen[ev.base] = ev
            if conflict:
                continue
            combined = edges + term_edges
            if term_edges and not _edges_acyclic(combined):
                continue
            if backtrack(index + 1, chosen, combined):
                return True
        return False

    return backtrack(0, {}, ())


class CentralizedScheduler:
    """Residuation-based scheduling at a single center site."""

    def __init__(
        self,
        dependencies: Iterable[Expr],
        sites: Mapping[Event, str] | None = None,
        attributes: Mapping[Event, EventAttributes] | None = None,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        decision_service_time: float = 0.0,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        watch_mode: bool = True,
    ):
        self.dependencies = list(dependencies)
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.sim = Simulator()
        service = {CENTER: decision_service_time} if decision_service_time else None
        self.network = Network(
            self.sim, latency=latency, rng=rng, service_times=service,
            tracer=self.tracer,
        )
        self._sites = {e.base: s for e, s in (sites or {}).items()}
        self._attributes = {e.base: a for e, a in (attributes or {}).items()}
        self.result = ExecutionResult()
        self.residuals: dict[Expr, Expr] = {
            d: to_normal_form(d) for d in self.dependencies
        }
        self._settled: dict[Event, Event] = {}
        self._parked: dict[Event, float] = {}  # event -> attempted_at
        self._waiters: dict[Event, list] = {}
        self._triggered: set[Event] = set()
        self._seen_attempts: set[Event] = set()
        self._no_progress_bases: set[Event] = set()
        # watched evaluation: the joint-completion check factors over
        # the connected components of the dependency/alphabet graph
        # (terms from different components share no bases, so neither
        # sign conflicts nor edge cycles can cross), so a state change
        # only needs to re-examine parked events in the components it
        # dirtied -- provided the other components' cached factors are
        # unchanged in value.
        self.watch_mode = watch_mode
        self.watch = WatchIndex()
        self._comp_of: dict[Event, int] = {}  # base -> component id
        self._comp_deps: dict[int, list[Expr]] = {}
        self._comp_bases: dict[int, frozenset[Event]] = {}
        self._factors: dict[int, tuple[bool, bool]] = {}
        self._dirty_comps: set[int] = set()
        if self.watch_mode:
            self._build_components()
            for comp in self._comp_deps:
                self._factors[comp] = self._component_factors(comp)

    def _build_components(self) -> None:
        parent: dict[Event, Event] = {}

        def find(base: Event) -> Event:
            while parent[base] is not base:
                parent[base] = parent[parent[base]]
                base = parent[base]
            return base

        for dep in self.dependencies:
            bases = sorted(dep.bases(), key=Event.sort_key)
            for base in bases:
                parent.setdefault(base, base)
            for left, right in zip(bases, bases[1:]):
                root_l, root_r = find(left), find(right)
                if root_l is not root_r:
                    parent[root_r] = root_l
        roots = sorted({find(b) for b in parent}, key=Event.sort_key)
        ids = {root: index for index, root in enumerate(roots)}
        for base in parent:
            self._comp_of[base] = ids[find(base)]
        for dep in self.dependencies:
            bases = dep.bases()
            # constant dependencies (no alphabet) share component -1
            comp = self._comp_of[next(iter(bases))] if bases else -1
            self._comp_deps.setdefault(comp, []).append(dep)
        for comp, deps in self._comp_deps.items():
            self._comp_bases[comp] = frozenset().union(
                *(d.bases() for d in deps)
            )

    def _component_factors(self, comp: int) -> tuple[bool, bool]:
        """The component's contribution to both global checks.

        ``_acceptable``/``_recoverable`` of any event foreign to the
        component multiply in exactly these two values: the
        attainability-restricted factor (acceptance) and the
        optimistic one (recoverability).  Foreign events never appear
        in the component's terms, so neither the residuation by the
        candidate nor its ``require``/``allowed_positive`` extras can
        change them."""
        residuals = tuple(
            self.residuals[dep] for dep in self._comp_deps.get(comp, ())
        )
        return (
            joint_completion_exists(
                residuals, allowed_positive=self._allowed_positive()
            ),
            joint_completion_exists(residuals),
        )

    def _mark_dirty(self, base: Event) -> None:
        comp = self._comp_of.get(base.base)
        if comp is not None:
            self._dirty_comps.add(comp)

    # ------------------------------------------------------------------

    def site_of(self, base: Event) -> str:
        return self._sites.get(base.base, f"site_{base.base.name}")

    def attributes(self, base: Event) -> EventAttributes:
        return self._attributes.get(base.base, _DEFAULT_ATTRS)

    def _all_bases(self) -> frozenset[Event]:
        bases: set[Event] = set()
        for d in self.dependencies:
            bases |= d.bases()
        return frozenset(bases)

    # ------------------------------------------------------------------
    # the center's decision logic

    def _state(self) -> tuple[Expr, ...]:
        return tuple(self.residuals.values())

    def _allowed_positive(self, extra: Event | None = None) -> frozenset[Event]:
        """Positive events a completion may rely on: already attempted
        (pending or parked), triggerable, or vouched-for (guaranteed)."""
        allowed: set[Event] = set()
        for base in self._all_bases():
            attrs = self.attributes(base)
            if attrs.triggerable or attrs.guaranteed:
                allowed.add(base)
        allowed |= {ev for ev in self._seen_attempts if not ev.negated}
        if extra is not None and not extra.negated:
            allowed.add(extra)
        return frozenset(allowed)

    def _acceptable(self, event: Event) -> bool:
        """Accept iff all residuals jointly admit a completion after it,
        relying only on attainable positive events."""
        after = tuple(residuate(r, event) for r in self._state())
        return joint_completion_exists(
            after, allowed_positive=self._allowed_positive(event)
        )

    def _recoverable(self, event: Event) -> bool:
        """Might a parked event still occur on some joint completion?

        Deliberately optimistic (no attainability restriction): events
        not yet attempted may be attempted later, so parking must not
        turn into rejection just because of attempt-arrival order."""
        return joint_completion_exists(self._state(), require=event)

    def _decide(self, event: Event, attempted_at: float) -> None:
        if event.base in self._settled:
            return
        newly_seen = event not in self._seen_attempts
        self._seen_attempts.add(event)
        if newly_seen:
            if self.watch_mode and not event.negated:
                # a new positive attempt enlarges _allowed_positive,
                # which only its own component's terms can consult
                self._mark_dirty(event)
            self.metrics.inc("attempts", site=CENTER)
            if self.tracer.active:
                self.tracer.actor(self.sim.now, CENTER, event, "attempted")
        if self._acceptable(event):
            self._occur(event, attempted_at, AttemptOutcome.ACCEPTED)
            return
        if not self.attributes(event.base).rejectable:
            self.result.violations.append(
                Violation("forced", f"nonrejectable {event!r} accepted against state")
            )
            if self.tracer.active:
                self.tracer.actor(self.sim.now, CENTER, event, "forced")
            self._occur(event, attempted_at, AttemptOutcome.FORCED)
            return
        if not self.attributes(event.base).delayable:
            # non-delayable: no parking; the attempt is refused now
            self._reject(event)
            return
        if self._recoverable(event):
            if event not in self._parked:
                self._parked[event] = attempted_at
                if self.watch_mode:
                    self.watch.register(
                        event,
                        self._comp_bases.get(
                            self._comp_of.get(event.base), frozenset()
                        ) | {event.base},
                    )
                self.result.parked_total += 1
                self.metrics.inc("parked", site=CENTER)
                self.metrics.gauge_adjust("parked_depth", 1, site=CENTER)
                if self.tracer.active:
                    self.tracer.actor(self.sim.now, CENTER, event, "parked")
            if newly_seen:
                # a new pending event enlarges the attainable set and
                # may legitimize earlier parked attempts
                self._after_state_change()
            return
        # permanently unacceptable
        self._unpark(event)
        self._reject(event)

    def _unpark(self, event: Event) -> None:
        if self._parked.pop(event, None) is not None:
            self.watch.unregister(event)
            self.metrics.gauge_adjust("parked_depth", -1, site=CENTER)

    def _reject(self, event: Event) -> None:
        self.metrics.inc("rejected", site=CENTER)
        if self.tracer.active:
            self.tracer.actor(self.sim.now, CENTER, event, "rejected")
        if self.attributes(event.base).auto_complement and not event.negated:
            comp = event.complement
            if comp.base not in self._settled:
                self._decide(comp, self.sim.now)

    def _occur(self, event: Event, attempted_at: float, outcome) -> None:
        self._settled[event.base] = event
        self._unpark(event)
        self._unpark(event.complement)
        if self.watch_mode:
            self._mark_dirty(event)
        for dep in list(self.residuals):
            before = self.residuals[dep]
            after = residuate(before, event)
            if after is before:
                continue  # normal forms are hash-consed: identity
                # means the residual (hence the factor) is unchanged
            self.residuals[dep] = after
            if self.watch_mode:
                bases = dep.bases()
                if bases:
                    self._mark_dirty(next(iter(bases)))
                else:
                    self._dirty_comps.add(-1)
        self.metrics.inc("residuation_steps", n=len(self.residuals), site=CENTER)
        self.metrics.inc("accepted", site=CENTER)
        self.metrics.observe(
            "time_to_allow", self.sim.now - attempted_at, site=CENTER
        )
        self.result.entries.append(
            TraceEntry(event, self.sim.now, attempted_at, outcome)
        )
        if self.tracer.active:
            self.tracer.actor(
                self.sim.now, CENTER, event, "accepted",
                waited=self.sim.now - attempted_at, outcome=outcome.value,
            )
        # tell the owning agent (round trip completes)
        self.network.send(
            CENTER,
            self.site_of(event.base),
            "decision",
            event,
            lambda ev: None,
        )
        for callback in self._waiters.pop(event.base, ()):
            callback()
        self._after_state_change()

    def _after_state_change(self) -> None:
        # re-examine parked events; under watched evaluation, only
        # those in components the change dirtied -- unless some
        # component's cached factor changed *value*, in which case the
        # global product every foreign event multiplies in has moved
        # and everything must be rescanned.
        if self.watch_mode:
            dirty = self._dirty_comps
            self._dirty_comps = set()
            full = False
            for comp in sorted(dirty):
                fresh = self._component_factors(comp)
                if self._factors.get(comp) != fresh:
                    self._factors[comp] = fresh
                    full = True
        else:
            dirty = set()
            full = True
        for parked_event in sorted(self._parked, key=Event.sort_key):
            comp = self._comp_of.get(parked_event.base)
            if (
                self.watch_mode
                and not full
                and comp is not None
                and comp not in dirty
            ):
                # clean component, factors unchanged: the event is
                # provably still (unacceptable, recoverable) -- the
                # naive scan would continue past it
                self.watch.note_skip()
                continue
            self.watch.note_wake()
            attempted_at = self._parked[parked_event]
            if self._acceptable(parked_event):
                # acting cuts this scan short; push the unexamined
                # dirt back so the re-entrant scan (or, if the action
                # never re-enters, the next one) still covers it --
                # that is what the naive engine's unconditional full
                # rescan guarantees
                if self.watch_mode:
                    self._dirty_comps |= (
                        set(self._factors) if full else dirty
                    )
                self._occur(parked_event, attempted_at, AttemptOutcome.ACCEPTED)
                return  # _occur re-enters _after_state_change
            if not self._recoverable(parked_event):
                if self.watch_mode:
                    self._dirty_comps |= (
                        set(self._factors) if full else dirty
                    )
                self._unpark(parked_event)
                self._reject(parked_event)
                return
        self._run_triggers()

    def _run_triggers(self) -> None:
        state = self._state()
        # doom and requirement are judged without the attainability
        # restriction: attempts not yet seen may still arrive
        if not joint_completion_exists(state):
            self.result.violations.append(
                Violation("doomed", "residual state lost all joint completions")
            )
            return
        alphabet: set[Event] = set()
        for r in state:
            alphabet |= r.alphabet()
        for ev in sorted(alphabet, key=Event.sort_key):
            if ev.negated or ev in self._triggered:
                continue
            if not self.attributes(ev.base).triggerable:
                continue
            # required: no joint completion survives the complement
            forced_comp = tuple(residuate(r, ev.complement) for r in state)
            if joint_completion_exists(forced_comp):
                continue
            self._triggered.add(ev)
            self.result.triggered += 1
            # center -> agent trigger, agent -> center attempt
            self.network.send(
                CENTER, self.site_of(ev.base), "trigger", ev,
                lambda e: self._agent_attempt(e),
            )

    # ------------------------------------------------------------------
    # agent-side behaviour

    def _agent_attempt(self, event: Event) -> None:
        attempted_at = self.sim.now
        self.network.send(
            self.site_of(event.base),
            CENTER,
            "attempt",
            (event, attempted_at),
            lambda pair: self._decide(pair[0], pair[1]),
        )

    def attempt(self, event: Event, at: float | None = None) -> None:
        self._agent_attempt(event)

    def schedule_script(self, script: AgentScript) -> None:
        for attempt in script.attempts:
            self._schedule_attempt(attempt)

    def _schedule_attempt(self, attempt) -> None:
        def fire() -> None:
            if attempt.after is not None:
                gate = self._settled.get(attempt.after.base)
                if gate is None:
                    self._waiters.setdefault(attempt.after.base, []).append(fire)
                    return
                if gate != attempt.after:
                    return
            self._agent_attempt(attempt.event)

        self.sim.schedule(attempt.time, fire)

    def run(
        self,
        scripts: Iterable[AgentScript] = (),
        settle: bool = True,
        verify: bool = True,
        max_rounds: int = 1000,
    ) -> ExecutionResult:
        for script in scripts:
            self.schedule_script(script)
        self._run_triggers()
        self.sim.run()
        if settle:
            self._settlement_rounds(max_rounds)
        self._finalize(verify)
        return self.result

    def _settlement_rounds(self, max_rounds: int) -> None:
        for _ in range(max_rounds):
            base = self._next_settlement()
            if base is None:
                return
            before = len(self.result.entries)
            self._agent_attempt(base.complement)
            self.sim.run()
            if len(self.result.entries) > before:
                self._no_progress_bases.clear()
            else:
                self._no_progress_bases.add(base)
        self.result.violations.append(
            Violation("settlement", "settlement did not converge")
        )

    def _next_settlement(self) -> Event | None:
        for base in sorted(self._all_bases(), key=Event.sort_key):
            if base in self._settled or base in self._no_progress_bases:
                continue
            if not self.attributes(base).auto_complement:
                continue
            return base
        return None

    def metrics_report(self) -> dict:
        """JSON-ready metrics: the registry plus the network counters."""
        from repro.temporal.guards import kernel_stats

        report = self.metrics.as_dict()
        report["network"] = self.network.stats.as_dict()
        report["kernel"] = kernel_stats()
        report["kernel"]["watch"] = dict(
            report["kernel"]["watch"], **self.watch.counts()
        )
        recorder = self.tracer.recorder_stats()
        if recorder is not None:
            report["recorder"] = recorder
        return report

    def _finalize(self, verify: bool) -> None:
        self.result.makespan = self.sim.now
        self.result.messages = self.network.stats.messages
        self.result.messages_by_kind = dict(self.network.stats.by_kind)
        self.result.max_site_load = self.network.max_site_load()
        self.result.central_queue_wait = self.network.stats.max_queue_wait
        self.result.unsettled = [
            b for b in sorted(self._all_bases(), key=Event.sort_key)
            if b not in self._settled
        ]
        if verify:
            self.result.verify(self.dependencies)

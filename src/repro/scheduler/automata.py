"""The automaton-per-dependency baseline (paper Section 6, citing [2]).

Attie et al. (VLDB 1993) enforce intertask dependencies by compiling
each dependency into a finite automaton and running the automata at a
central scheduler ("it avoids generating product automata, but the
individual automata themselves can be quite large").  We reconstruct
that approach from the paper's own machinery: the automaton of a
dependency is the closure of its residuals (Figure 2 *is* this
automaton for ``D_<`` and ``D_->``), with states deduplicated up to
semantic equivalence of expressions.

The run-time decision procedure is the same as the residuation
scheduler's (the automaton is just the precompiled transition table),
so the interesting comparison -- bench SC2 -- is *compile-time* state
count and table size versus the size of the synthesized symbolic
guards.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.algebra.denotation import denotation
from repro.algebra.expressions import Expr, Top, Zero
from repro.algebra.normal_form import to_normal_form
from repro.algebra.residuation import residuate
from repro.algebra.symbols import Event
from repro.scheduler.events import EventAttributes
from repro.scheduler.residuation_scheduler import CentralizedScheduler
from repro.sim.network import LatencyModel


class DependencyAutomaton:
    """The residual-closure automaton of one dependency.

    States are residual expressions (semantically deduplicated when the
    alphabet is small enough to enumerate); the alphabet is
    ``Gamma_D``; transitions are residuation.  The dead state is the
    one whose denotation is empty; the accepting states are those whose
    obligation is already discharged (``T``).
    """

    #: Alphabet size (bases) up to which states are deduplicated
    #: semantically; beyond it, syntactic canonical forms are used.
    SEMANTIC_DEDUP_LIMIT = 4

    def __init__(self, dependency: Expr):
        self.dependency = dependency
        start = to_normal_form(dependency)
        self.alphabet: tuple[Event, ...] = tuple(
            sorted(start.alphabet(), key=Event.sort_key)
        )
        bases = sorted({e.base for e in self.alphabet}, key=Event.sort_key)
        semantic = len(bases) <= self.SEMANTIC_DEDUP_LIMIT

        def key_of(expr: Expr):
            if isinstance(expr, (Top, Zero)) or not semantic:
                return expr
            return denotation(expr, bases)

        self.states: list[Expr] = []
        self.transitions: dict[tuple[int, Event], int] = {}
        index_of: dict[object, int] = {}

        def intern(expr: Expr) -> int:
            key = key_of(expr)
            found = index_of.get(key)
            if found is not None:
                return found
            index = len(self.states)
            self.states.append(expr)
            index_of[key] = index
            return index

        self.initial = intern(start)
        frontier = [self.initial]
        seen = {self.initial}
        while frontier:
            state = frontier.pop()
            expr = self.states[state]
            for event in self.alphabet:
                nxt = intern(residuate(expr, event))
                self.transitions[(state, event)] = nxt
                if nxt not in seen:
                    seen.add(nxt)
                    frontier.append(nxt)

    @property
    def state_count(self) -> int:
        return len(self.states)

    @property
    def transition_count(self) -> int:
        return len(self.transitions)

    def step(self, state: int, event: Event) -> int:
        """Follow a transition; foreign events leave the state unchanged."""
        return self.transitions.get((state, event), state)

    def is_dead(self, state: int) -> bool:
        return isinstance(self.states[state], Zero)

    def is_discharged(self, state: int) -> bool:
        return isinstance(self.states[state], Top)

    def run(self, events: Iterable[Event]) -> int:
        state = self.initial
        for event in events:
            state = self.step(state, event)
        return state


class AutomataScheduler(CentralizedScheduler):
    """Centralized scheduling over precompiled dependency automata.

    Decisions are identical to :class:`CentralizedScheduler` (the
    automaton is the precompiled form of the same residual state), so
    this subclass tracks automaton states alongside and exposes the
    compile-time metrics for bench SC2.
    """

    def __init__(
        self,
        dependencies: Iterable[Expr],
        sites: Mapping[Event, str] | None = None,
        attributes: Mapping[Event, EventAttributes] | None = None,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        decision_service_time: float = 0.0,
        tracer=None,
        metrics=None,
    ):
        dependencies = list(dependencies)
        super().__init__(
            dependencies,
            sites=sites,
            attributes=attributes,
            latency=latency,
            rng=rng,
            decision_service_time=decision_service_time,
            tracer=tracer,
            metrics=metrics,
        )
        self.automata = [DependencyAutomaton(d) for d in dependencies]
        self._automaton_state = [a.initial for a in self.automata]

    def total_states(self) -> int:
        return sum(a.state_count for a in self.automata)

    def total_transitions(self) -> int:
        return sum(a.transition_count for a in self.automata)

    def _occur(self, event: Event, attempted_at: float, outcome) -> None:
        for i, automaton in enumerate(self.automata):
            self._automaton_state[i] = automaton.step(
                self._automaton_state[i], event
            )
        super()._occur(event, attempted_at, outcome)

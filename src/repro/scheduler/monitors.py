"""Requirement monitoring: when must a triggerable event be caused?

Section 3.3 lists triggering among the scheduler's three ways of
making an event occur, and Example 4 relies on it (``s_book`` is
initiated when ``s_buy`` starts; ``s_cancel`` compensates when ``buy``
fails).  The decision rule used here is derived from the residual
state of each dependency:

    an event ``g`` is *required* by dependency ``D`` in state ``R``
    (the residual of ``D`` after the events so far) when every
    accepting completion of ``R`` over the still-unsettled alphabet
    contains ``g``.

Required events that are triggerable get triggered; a state with *no*
accepting completion is doomed and is reported as a violation as soon
as it arises (the scheduler should have prevented it).

In the centralized schedulers the monitor lives at the scheduler node
(it already tracks residuals); in the distributed scheduler one
monitor runs on the site of each triggerable event, fed by the same
announcements its actors receive, so triggering needs no central
state.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.algebra.expressions import Expr, Top, Zero
from repro.algebra.normal_form import to_normal_form
from repro.algebra.residuation import residuate
from repro.algebra.symbols import Event
from repro.obs.tracer import NULL_TRACER
from repro.temporal.guards import accepting_paths


def required_events(residual: Expr, settled_bases: frozenset[Event]) -> frozenset[Event] | None:
    """Events on *every* accepting completion of ``residual``.

    Completions may use any still-unsettled signed event from the
    residual's alphabet.  Returns ``None`` when no accepting completion
    exists (the dependency is doomed).
    """
    if isinstance(residual, Top):
        return frozenset()
    if isinstance(residual, Zero):
        return None
    paths = [
        p
        for p in accepting_paths(residual, minimal=True)
        if all(ev.base not in settled_bases for ev in p)
    ]
    if not paths:
        return None
    common = set(paths[0])
    for p in paths[1:]:
        common &= set(p)
    return frozenset(common)


class RequirementMonitor:
    """Tracks residuals of a set of dependencies and fires triggers.

    Parameters
    ----------
    dependencies:
        The dependencies to monitor (normal-formed internally).
    triggerable:
        Base events the scheduler may cause.
    trigger:
        Callback invoked with each event that must be caused.
    doomed:
        Callback invoked with (dependency, residual) when a dependency
        loses all accepting completions.
    site / tracer / metrics:
        Optional observability context: the site this monitor runs at,
        and where to record residuation steps and trigger decisions.
    """

    def __init__(
        self,
        dependencies: Iterable[Expr],
        triggerable: frozenset[Event],
        trigger: Callable[[Event], None],
        doomed: Callable[[Expr, Expr], None] | None = None,
        site: str = "monitor",
        tracer=None,
        metrics=None,
    ):
        self._residuals: dict[Expr, Expr] = {
            dep: to_normal_form(dep) for dep in dependencies
        }
        self._triggerable = frozenset(b.base for b in triggerable)
        self._trigger = trigger
        self._doomed = doomed
        self._site = site
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self._metrics = metrics
        self._now = lambda: 0.0
        self._settled: set[Event] = set()
        #: signed occurrences in observation order (snapshot record)
        self._observed: list[Event] = []
        self._already_triggered: set[Event] = set()

    def bind_clock(self, now: Callable[[], float]) -> None:
        """Attach the simulator clock so trace records carry real times."""
        self._now = now

    def observe(self, event: Event) -> None:
        """Assimilate an occurrence and fire any newly-required triggers.

        Each base settles exactly once, so a repeated announcement (the
        session layer is at-least-once across a site restart) is a
        duplicate and is dropped -- residuating twice by the same event
        would corrupt the residual."""
        if event.base in self._settled:
            return
        self._settled.add(event.base)
        self._observed.append(event)
        for dep in list(self._residuals):
            self._residuals[dep] = residuate(self._residuals[dep], event)
        if self._metrics is not None:
            self._metrics.inc(
                "residuation_steps", n=len(self._residuals), site=self._site
            )
        self.evaluate()

    def evaluate(self) -> None:
        settled = frozenset(self._settled)
        for dep, residual in self._residuals.items():
            required = required_events(residual, settled)
            if required is None:
                if self._tracer.active:
                    self._tracer.monitor(
                        self._now(), self._site, "doomed",
                        dependency=repr(dep), residual=repr(residual),
                    )
                if self._doomed is not None:
                    self._doomed(dep, residual)
                continue
            for ev in sorted(required, key=Event.sort_key):
                if ev.negated:
                    continue  # complements settle via agent policy
                if ev.base in self._triggerable and ev not in self._already_triggered:
                    self._already_triggered.add(ev)
                    if self._tracer.active:
                        self._tracer.monitor(
                            self._now(), self._site, "trigger", event=repr(ev)
                        )
                    if self._metrics is not None:
                        self._metrics.inc("triggered", site=self._site)
                    self._trigger(ev)

    def residual(self, dependency: Expr) -> Expr:
        return self._residuals[dependency]

    @property
    def residuals(self) -> dict[Expr, Expr]:
        return dict(self._residuals)

    def snapshot_state(self) -> dict:
        """JSON-ready copy of the monitor's state for a global snapshot."""
        return {
            "site": self._site,
            "settled": sorted(repr(e) for e in self._observed),
            "triggered": sorted(repr(e) for e in self._already_triggered),
            "residuals": {
                repr(dep): repr(res)
                for dep, res in self._residuals.items()
            },
        }

"""Execution: task agents, event actors, and the three schedulers.

* :mod:`repro.scheduler.events` -- event attributes (triggerable,
  rejectable, ...) and shared result types.
* :mod:`repro.scheduler.messages` -- the message vocabulary flowing
  between actors (announcements, promises, not-yet certificates).
* :mod:`repro.scheduler.monitors` -- the requirement monitor that
  decides when a triggerable event *must* be caused (Section 3.3's
  "triggers that event ... on its own accord").
* :mod:`repro.scheduler.agents` -- task agents with significant-event
  skeletons (Figure 1) and scripted attempt behaviour.
* :mod:`repro.scheduler.actors` -- one actor per signed event type,
  holding its guard and assimilating messages (Sections 2, 4.3).
* :mod:`repro.scheduler.guard_scheduler` -- the paper's contribution:
  the distributed event-centric scheduler.
* :mod:`repro.scheduler.residuation_scheduler` -- the centralized
  dependency-centric baseline (Figure 2 executed at one site).
* :mod:`repro.scheduler.automata` -- the automaton-per-dependency
  baseline in the style of Attie et al. [2] (Section 6).
"""

from repro.scheduler.events import (
    AttemptOutcome,
    EventAttributes,
    ExecutionResult,
    Violation,
)
from repro.scheduler.agents import AgentScript, ScriptedAttempt, TaskSkeleton
from repro.scheduler.guard_scheduler import DistributedScheduler
from repro.scheduler.residuation_scheduler import CentralizedScheduler
from repro.scheduler.automata import AutomataScheduler, DependencyAutomaton

__all__ = [
    "AgentScript",
    "AttemptOutcome",
    "AutomataScheduler",
    "CentralizedScheduler",
    "DependencyAutomaton",
    "DistributedScheduler",
    "EventAttributes",
    "ExecutionResult",
    "ScriptedAttempt",
    "TaskSkeleton",
    "Violation",
]

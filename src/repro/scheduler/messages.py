"""Message vocabulary of the distributed event-centric scheduler.

Section 4.3: when an event happens, ``[]e`` announcements flow to the
actors of dependent events; ``<>e`` may be sent as a *promise*; and
``!f`` subexpressions require a short certificate exchange so that
the two events agree on whether ``f`` has happened yet.  Each message
below is one leg of those protocols; the ``kind`` strings are what the
network statistics aggregate by.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.symbols import Event


@dataclass(frozen=True)
class Announce:
    """``[]e``: the event has occurred (sent to subscribers)."""

    event: Event

    kind = "announce"


@dataclass(frozen=True)
class PromiseRequest:
    """Ask ``target``'s actor for a ``<>target`` promise.

    Carries the requester so the grantee may evaluate its own guard
    under the assumption that the requester will occur (the mutual
    ``<>`` consensus of Example 11).  ``demand`` marks an escalated
    request issued at quiescence: an idle *triggerable* target is then
    triggered to satisfy it (lazy triggering -- the scheduler causes
    events only once nothing else can make progress).

    ``chain`` records the requesters up the request chain: a grantee
    whose own guard needs further eventualities re-requests with
    itself appended, and a request whose chain loops back closes the
    consensus cycle (all chain members occur together).
    """

    target: Event
    requester: Event
    demand: bool = False
    chain: tuple = ()

    kind = "promise_request"


@dataclass(frozen=True)
class PromiseGrant:
    """``<>target``: the target event is guaranteed to occur."""

    target: Event
    requester: Event

    kind = "promise_grant"


@dataclass(frozen=True)
class PromiseRefuse:
    """The target's actor cannot promise (not pending, or impossible)."""

    target: Event
    requester: Event

    kind = "promise_refuse"


@dataclass(frozen=True)
class NotYetRequest:
    """Ask ``target``'s actor to certify ``target`` has not occurred.

    ``round_id`` identifies the requester's certificate round; replies
    echo it so a reply from an earlier round (retransmitted, delayed,
    or predating a crash) is recognized as stale and its certificate
    released instead of being consumed.
    """

    target: Event
    requester: Event
    round_id: int = 0

    kind = "not_yet_request"


@dataclass(frozen=True)
class NotYetReply:
    """Reply to a :class:`NotYetRequest`.

    ``status`` is one of ``"not_yet"`` (certified, and the target actor
    froze itself until released), ``"occurred"``, or
    ``"comp_occurred"``.
    """

    target: Event
    requester: Event
    status: str
    round_id: int = 0

    kind = "not_yet_reply"


@dataclass(frozen=True)
class Release:
    """Release a freeze taken on behalf of ``requester``'s round."""

    target: Event
    requester: Event
    round_id: int = 0

    kind = "release"


@dataclass(frozen=True)
class SyncRequest:
    """Recovery: ask ``base``'s coordinator whether the base settled.

    Sent by a restarted actor (or on behalf of a restarted monitor)
    for every base its guard mentions.  Receiving one also tells the
    coordinator that the requester lost its volatile state, so any
    freeze the requester held on this base is void and is released.
    """

    base: Event
    requester: Event

    kind = "sync_request"


@dataclass(frozen=True)
class SyncReply:
    """Recovery reply: the base's durable settlement status.

    ``status`` is ``"occurred"``, ``"comp_occurred"``, or
    ``"unsettled"`` -- unlike a not-yet certificate this carries no
    freeze, only the (stable) occurrence facts, which is all a
    restarted actor needs to rebuild its knowledge masks.
    """

    base: Event
    requester: Event
    status: str

    kind = "sync_reply"


@dataclass(frozen=True)
class Recovered:
    """Recovery broadcast: ``event``'s actor restarted and lost its
    volatile protocol state.

    Sent to the subscribers of the event's base (exactly the actors
    that may have promise requests or certificate rounds outstanding
    against it).  Receivers clear their request-dedup record for the
    base, abort-and-retry any round awaiting it, and re-solicit."""

    event: Event

    kind = "recovered"


@dataclass(frozen=True)
class AttemptMsg:
    """A task agent asks permission for an event (any scheduler)."""

    event: Event
    attempted_at: float

    kind = "attempt"


@dataclass(frozen=True)
class DecisionMsg:
    """A centralized scheduler's verdict travelling back to the agent."""

    event: Event
    outcome: str

    kind = "decision"


@dataclass(frozen=True)
class TriggerMsg:
    """The scheduler causes a triggerable event in its task agent."""

    event: Event

    kind = "trigger"

"""Event actors: the distributed unit of scheduling (Sections 2, 4.3).

One actor is instantiated per signed event type.  It keeps the event's
guard (as a cube region, :mod:`repro.temporal.cubes`), its *knowledge*
about other base events (a world mask per base, tightened
monotonically as messages arrive), and runs the two consensus
subprotocols the paper calls out:

* **promises** -- a guard needing ``<>f`` can be discharged by a
  conditional promise from ``f``'s actor before ``f`` actually occurs
  (Example 11's mutual-``<>`` consensus);
* **not-yet certificates** -- a guard containing ``!f`` requires the
  two events to agree that ``f`` has not happened yet; the certifying
  actor freezes its own event until the requester decides, so the
  agreement cannot be invalidated in flight.

Deadlock freedom of the not-yet protocol comes from a priority rule:
an actor with an outstanding round of its own defers certificate
requests from *larger*-keyed bases until its round completes, so the
wait-for relation among active rounds is acyclic.

Decision rule on an attempt (Section 4.3's "evaluation"):

* knowledge region inside the guard region -> **fire**;
* guard unreachable under knowledge closure -> **reject permanently**
  (the agent then settles the complement);
* otherwise -> **park**, and solicit exactly the facts (promises /
  certificates) that could complete some cube of the guard.
"""

from __future__ import annotations

import enum
import time
from typing import TYPE_CHECKING

from repro.algebra.symbols import Event
from repro.scheduler.messages import (
    Announce,
    NotYetReply,
    NotYetRequest,
    PromiseGrant,
    PromiseRefuse,
    PromiseRequest,
    Recovered,
    Release,
    SyncReply,
    SyncRequest,
)
from repro.temporal.cubes import (
    C_OCC,
    DIA_COMP_MASK,
    DIA_MASK,
    E_OCC,
    FULL,
    GuardExpr,
    P_C,
    P_E,
    closure,
    flip,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.scheduler.guard_scheduler import DistributedScheduler

#: The transient fact a not-yet certificate establishes: neither the
#: base nor its complement has occurred (worlds P_E or P_C).
NOT_YET_MASK = P_E | P_C


class ActorStatus(enum.Enum):
    IDLE = "idle"          # never attempted
    PENDING = "pending"    # attempted, decision outstanding (parked)
    OCCURRED = "occurred"  # the event happened
    DEAD = "dead"          # the complement happened; can never occur
    REJECTED = "rejected"  # permanently refused; complement may follow


class EventActor:
    """The actor of one signed event type."""

    def __init__(
        self,
        event: Event,
        guard: GuardExpr,
        site: str,
        scheduler: "DistributedScheduler",
    ):
        self.event = event
        #: cached ``repr(event)`` -- profiled hot paths label every
        #: span with it, and the repr never changes
        self.event_label = repr(event)
        self.guard = guard
        #: the durable (logged) guard: the compiled artifact plus any
        #: run-time reconfigurations, *without* the volatile
        #: ``simplify_under`` compressions -- this is what a crash
        #: restores and recovery re-simplifies as facts return
        self._durable_guard = guard
        self.site = site
        self.sched = scheduler
        self.status = ActorStatus.IDLE
        self.attempted_at: float | None = None
        self.knowledge: dict[Event, int] = {}
        #: compiled-guard cursor (one pointer into the scheduler's
        #: interned automaton); ``None`` runs the cube engine.  The
        #: ``getattr`` covers every construction site -- schedulers
        #: without the feature simply have no ``compiled`` attribute.
        engine = getattr(scheduler, "compiled", None)
        self.cursor = engine.cursor(guard) if engine is not None else None
        # -- own not-yet round --
        self.round_active = False
        self.round_id = 0  # scheduler-issued; replies echo it
        self.round_awaiting: set[Event] = set()
        self.round_certified: set[Event] = set()
        self.round_holds: set[Event] = set()  # bases we froze
        self._knowledge_dirty = True  # new facts since last round?
        # -- promise bookkeeping --
        # (target, chain) -> demand level already sent; a request with
        # a new chain carries new assumption context and must go out
        # even if the bare target was asked before
        self.promise_requested: dict[tuple, int] = {}
        self.granted_to: set[Event] = set()      # we promised <>self to these
        self.deferred_promise_reqs: list[PromiseRequest] = []
        self.pending_grant_reqs: list[PromiseRequest] = []
        # -- not-yet service side --
        self.deferred_notyet_reqs: list[NotYetRequest] = []
        # -- escalation bookkeeping --
        self._escalated_cubes: set = set()

    # ------------------------------------------------------------------
    # knowledge

    def learn(
        self,
        base: Event,
        mask: int,
        source: str | None = None,
        origin: Event | None = None,
    ) -> None:
        """Tighten the knowledge mask for ``base``.

        ``source``/``origin`` name the message kind and signed event
        that justified the refinement; they are recorded only when a
        provenance log is attached (``sched.provenance.active``), so
        the default path pays one attribute read and a branch."""
        current = self.knowledge.get(base, FULL)
        updated = current & mask
        if updated != current:
            self.knowledge[base] = updated
            self._knowledge_dirty = True
            if self.cursor is not None:
                self.cursor.learn(base, updated)
            if self.sched.provenance.active:
                self.sched.provenance.learned(self, base, mask, source, origin)

    def observe_occurrence(self, event: Event) -> None:
        """Assimilate a ``[]`` announcement (the Section 4.3 proof rules)."""
        self.learn(
            event.base, C_OCC if event.negated else E_OCC,
            source="announce", origin=event,
        )
        profiler = self.sched.profiler
        if profiler.active:
            profiler.push("cube_ops", site=self.site, event=self.event_label)
            try:
                self._assimilate()
            finally:
                profiler.pop()
        else:
            self._assimilate()
        self.try_fire()
        self._process_pending_grants()

    def _assimilate(self) -> None:
        """Advance the residual past ``simplify_under``: a pointer hop
        on the compiled automaton, a cube rewrite otherwise.  The
        compiled residual equals the cube one value for value (the
        node caches the very ``simplify_under`` result it replaces)."""
        if self.cursor is not None:
            self.guard = self.cursor.assimilate()
        else:
            self.guard = self.guard.simplify_under(self.knowledge)

    def note_occurrence(self, event: Event) -> None:
        """The watched-evaluation skip path: record the announced fact
        without re-evaluating the guard.

        Identical ``learn`` call to :meth:`observe_occurrence`, so
        knowledge and provenance stay byte-for-byte equal to the naive
        engine's; the scheduler only routes here when its watch index
        proves the skipped re-evaluation would have been a no-op (the
        base is outside the reduced residual's support and no pending
        protocol action is armed)."""
        self.learn(
            event.base, C_OCC if event.negated else E_OCC,
            source="announce", origin=event,
        )

    def solicit_would_act(self) -> bool:
        """Would the next announcement-driven pass take a protocol
        action regardless of the announced base?

        Mirrors :meth:`try_fire` + :meth:`_solicit` without side
        effects.  Any announcement's learn marks knowledge dirty, so a
        parked actor whose first requestable cube carries certificate
        needs would start a not-yet round, and one whose promise
        requests lost their dedup entries (a refusal or a peer
        recovery cleared them) would re-send -- the naive engine does
        both from *irrelevant* announcements, so the watch index must
        wake such actors on everything."""
        if self.status is not ActorStatus.PENDING:
            return False
        if self.sched.is_frozen(self.event.base, exclude=self.event):
            return False  # try_fire returns before soliciting
        possible = [
            c for c in sorted(self.guard.cubes) if self._cube_possible(c)
        ]
        mandatory = len(possible) == 1
        for cube in possible:
            plan = self._cube_plan(cube)
            if plan is None:
                continue
            promises, certificates = plan
            level = 1 if mandatory else 0
            for target in promises:
                if target.base == self.event.base:
                    continue
                key = (target, (self.event,))
                if self.promise_requested.get(key, -1) < level:
                    return True  # an un-deduped request would be sent
            if certificates and not self.round_active:
                return True  # a dirty learn would start a round
            return False  # _solicit stops at the first planned cube
        return False

    def strengthen_guard(self, extra: GuardExpr) -> None:
        """Conjoin a contribution from a dependency added at run time.

        The new constraint is assimilated against everything already
        known; a pending attempt is re-examined (it may now be
        impossible) and the escalation bookkeeping reset, since the
        cube structure changed.
        """
        self._durable_guard = self._durable_guard & extra
        if self.cursor is not None:
            # incremental recompile: re-enter the automaton at the
            # strengthened guard, then assimilate as the cube engine does
            self.cursor.reset(self.guard & extra, self.knowledge)
            self.guard = self.cursor.assimilate()
        else:
            self.guard = (self.guard & extra).simplify_under(self.knowledge)
        self._escalated_cubes = set()
        self._knowledge_dirty = True
        self.try_fire()

    def replace_guard(self, new_guard: GuardExpr) -> None:
        """Install a recomputed guard (dependency removed at run time).

        The guard can only have weakened, so a parked attempt may now
        fire; a previously rejected attempt may be retried by its
        agent (rejection is not retracted here -- the complement may
        already be in flight).
        """
        self._durable_guard = new_guard
        if self.cursor is not None:
            self.cursor.reset(new_guard, self.knowledge)
            self.guard = self.cursor.assimilate()
        else:
            self.guard = new_guard.simplify_under(self.knowledge)
        self._escalated_cubes = set()
        self._knowledge_dirty = True
        self.try_fire()

    # ------------------------------------------------------------------
    # attempts and decisions

    def attempt(self, attempted_at: float) -> None:
        if self.status in (ActorStatus.OCCURRED, ActorStatus.DEAD):
            return
        if self.status is ActorStatus.IDLE or self.status is ActorStatus.REJECTED:
            self.status = ActorStatus.PENDING
            self.attempted_at = attempted_at
            self.sched.metrics.inc("attempts", site=self.site)
            if self.sched.tracer.active:
                self.sched.tracer.actor(
                    self.sched.sim.now, self.site, self.event, "attempted"
                )
        # answer promise requests that waited for us to become pending
        deferred, self.deferred_promise_reqs = self.deferred_promise_reqs, []
        for req in deferred:
            self.on_promise_request(req)
        self.try_fire()

    def try_fire(self) -> None:
        if self.status is not ActorStatus.PENDING:
            return
        if self.sched.is_frozen(self.event.base, exclude=self.event):
            return  # some requester holds a certificate on our base
        verdict = self._evaluate_guard(self.knowledge)
        if verdict == "fire":
            self._fire()
            return
        if verdict == "never":
            self._reject()
            return
        if not self.sched.attributes(self.event.base).delayable:
            # non-delayable (Section 2): an undetermined guard at
            # attempt time means rejection, not parking
            self._reject()
            return
        self.sched.note_parked(self.event)
        self._solicit()

    def _evaluate_guard(self, knowledge: dict[Event, int]) -> str:
        """Decide fire/park/never for the residual guard under
        ``knowledge`` (Section 4.3's evaluation rule), optionally
        timed, traced, and profiled.  The untraced, unprofiled path
        computes nothing extra beyond the evaluation counter."""
        sched = self.sched
        sched.metrics.inc("guard_evals", site=self.site)
        timed = sched.tracer.active or sched.metrics.timed
        profiled = sched.profiler.active
        if not timed and not profiled:
            if self.cursor is not None:
                return self.cursor.verdict()
            if self.guard.region_subsumes(knowledge):
                return "fire"
            if not self.guard.possible_under(knowledge):
                return "never"
            return "park"
        if profiled:
            sched.profiler.push(
                "guard_eval", site=self.site, event=self.event_label
            )
        try:
            start = time.perf_counter()
            if self.cursor is not None:
                verdict = self.cursor.verdict()
            elif self.guard.region_subsumes(knowledge):
                verdict = "fire"
            elif not self.guard.possible_under(knowledge):
                verdict = "never"
            else:
                verdict = "park"
            elapsed = time.perf_counter() - start
        finally:
            if profiled:
                sched.profiler.pop()
        if sched.metrics.timed:
            sched.metrics.observe("guard_eval_seconds", elapsed, site=self.site)
        if sched.tracer.active:
            sched.tracer.guard_eval(
                sched.sim.now, self.site, self.event,
                guard=self._durable_guard, residual=self.guard,
                verdict=verdict, elapsed=elapsed,
                cubes=self._structured_cubes(),
                knowledge=self._structured_knowledge(knowledge),
            )
        return verdict

    def _structured_cubes(self) -> list[list[list]]:
        """The durable guard's cubes as JSON-ready ``[[base, mask]]``
        lists (string base names), for offline provenance replay.
        Built only inside ``tracer.active`` branches."""
        return [
            sorted([repr(base), mask] for base, mask in cube)
            for cube in sorted(self._durable_guard.cubes)
        ]

    @staticmethod
    def _structured_knowledge(knowledge: dict[Event, int]) -> dict[str, int]:
        return {
            repr(base): mask
            for base, mask in sorted(
                knowledge.items(), key=lambda item: item[0].sort_key()
            )
        }

    def _fire(self) -> None:
        # Status first: finishing the round serves certificate requests
        # deferred by the priority rule, and they must see the
        # occurrence -- certifying "not yet" in the same instant the
        # event fires would hand the requester a false transient fact.
        self.status = ActorStatus.OCCURRED
        self._finish_round(fired=False)  # abandon any round; we are done
        self._process_pending_grants()
        self.sched.record_occurrence(self)

    def _reject(self) -> None:
        if not self.sched.attributes(self.event.base).rejectable:
            # Nonrejectable events happen no matter what (Section 3.3);
            # record the forced acceptance as a violation source.
            if self.sched.tracer.active:
                self.sched.tracer.actor(
                    self.sched.sim.now, self.site, self.event, "forced"
                )
            self.sched.note_forced(self.event)
            self._fire()
            return
        self._finish_round(fired=False)
        self.status = ActorStatus.REJECTED
        if self.sched.tracer.active:
            self.sched.tracer.actor(
                self.sched.sim.now, self.site, self.event, "rejected"
            )
        self.sched.notify_rejected(self.event)

    # ------------------------------------------------------------------
    # solicitation: figure out which facts could complete a cube

    def _solicit(self) -> None:
        possible = [c for c in sorted(self.guard.cubes) if self._cube_possible(c)]
        # With a single live alternative the requests are mandatory:
        # carry demand so idle triggerable targets are caused at once
        # ("information flows as soon as it is available", Section 6).
        # With alternatives, stay lazy; quiescence escalation demands
        # cube-by-cube later if nothing else resolves first.
        mandatory = len(possible) == 1
        for cube in possible:
            plan = self._cube_plan(cube)
            if plan is None:
                continue
            promises, certificates = plan
            for target in promises:
                self._request_promise(target, demand=mandatory)
            if certificates and not self.round_active and self._knowledge_dirty:
                self._start_round(certificates)
            return  # one requestable cube at a time keeps traffic low

    def _cube_possible(self, cube) -> bool:
        return all(
            closure(self.knowledge.get(base, FULL)) & mask for base, mask in cube
        )

    def _cube_plan(self, cube):
        """Which promises/certificates would certify this cube?

        Returns ``(promise_targets, certificate_bases)`` or ``None``
        when some base can only be resolved by an actual occurrence.
        """
        promises: list[Event] = []
        certificates: list[Event] = []
        for base, mask in cube:
            known = self.knowledge.get(base, FULL)
            if known & ~mask & FULL == 0:
                continue  # already certain
            resolved = False
            # Prefer a (transient, cheap) not-yet certificate over a
            # promise: promises oblige the grantee to occur.
            candidates = (
                ((NOT_YET_MASK,), None, True),
                ((DIA_MASK,), base, False),
                ((DIA_COMP_MASK,), base.complement, False),
                ((DIA_MASK, NOT_YET_MASK), base, True),
                ((DIA_COMP_MASK, NOT_YET_MASK), base.complement, True),
            )
            if not self.sched.policy.certificates:
                candidates = tuple(
                    c for c in candidates if not c[2]
                )
            for facts, needs_promise, needs_cert in candidates:
                combined = known
                for fact in facts:
                    combined &= fact
                if combined and combined & ~mask & FULL == 0:
                    if needs_promise is not None:
                        promises.append(needs_promise)
                    if needs_cert:
                        certificates.append(base)
                    resolved = True
                    break
            if not resolved:
                return None
        return promises, certificates

    # ------------------------------------------------------------------
    # promise protocol

    def _request_promise(
        self, target: Event, demand: bool = False, chain: tuple = ()
    ) -> bool:
        if target.base == self.event.base or target in chain:
            return False
        chain = chain or (self.event,)
        level = 1 if demand else 0
        key = (target, chain)
        if self.promise_requested.get(key, -1) >= level:
            return False
        self.promise_requested[key] = level
        self.sched.send_to_actor(
            self.event,
            target,
            PromiseRequest(
                target=target,
                requester=self.event,
                demand=demand,
                chain=chain,
            ),
        )
        return True

    def escalate(self) -> bool:
        """Quiescence escalation: demand the facts for ONE further cube.

        Called by the scheduler when the simulation has drained and
        this actor is still parked -- nothing else will arrive on its
        own.  Demanding cube-by-cube keeps triggering lazy: an
        alternative that resolves cheaply (a pending event promising)
        is tried before one that would cause a triggerable event.
        Returns True when a new demand was issued."""
        if self.status is not ActorStatus.PENDING:
            return False
        for cube in sorted(self.guard.cubes):
            if cube in self._escalated_cubes:
                continue
            if not self._cube_possible(cube):
                continue
            plan = self._cube_plan(cube)
            if plan is None:
                continue
            self._escalated_cubes.add(cube)
            promises, certificates = plan
            issued = False
            for target in promises:
                if self._request_promise(target, demand=True):
                    issued = True
            if certificates and not self.round_active:
                self._knowledge_dirty = True
                self._start_round(certificates)
                issued = True
            if issued:
                return True
            # nothing new went out for this cube; try the next one
        return False

    def on_promise_request(self, req: PromiseRequest) -> None:
        requester = req.requester
        if self.status is ActorStatus.OCCURRED:
            self.sched.send_to_actor(
                self.event, requester,
                PromiseGrant(target=self.event, requester=requester),
            )
            return
        if self.status is ActorStatus.DEAD:
            self.sched.send_to_actor(
                self.event, requester,
                PromiseRefuse(target=self.event, requester=requester),
            )
            return
        guaranteed_idle = (
            self.status is ActorStatus.IDLE
            and not self.event.negated
            and self.sched.attributes(self.event.base).guaranteed
        )
        if self.status is ActorStatus.IDLE and not guaranteed_idle:
            attrs = self.sched.attributes(self.event.base)
            eager = req.demand or not self.sched.policy.lazy_triggering
            if eager and attrs.triggerable and not self.event.negated:
                # Escalated request at quiescence (or eager-triggering
                # ablation): cause the event now.
                self.deferred_promise_reqs.append(req)
                self.sched.request_trigger(self.event)
                return
            # Remember it: re-processed when we get attempted.
            self.deferred_promise_reqs.append(req)
            return
        # PENDING (or IDLE but guaranteed by its agent): the grant is a
        # commitment to occur, so it is issued only once this actor's
        # own eventuality needs are *secured* -- already known, assumed
        # via the request chain (a chain looping back is Example 11's
        # consensus cycle: all members occur together), or acquired by
        # chaining a further promise request.  Requests that cannot be
        # decided yet are parked in ``pending_grant_reqs`` and
        # re-evaluated as knowledge arrives.
        grantable = self.status is ActorStatus.PENDING or guaranteed_idle
        if not grantable:
            self.deferred_promise_reqs.append(req)
            return
        self._decide_grant(req)

    def _grant_assumption(self, req: PromiseRequest) -> dict[Event, int]:
        assumed = dict(self.knowledge)
        for member in (req.requester,) + tuple(req.chain):
            mask = DIA_COMP_MASK if member.negated else DIA_MASK
            assumed[member.base] = assumed.get(member.base, FULL) & mask
        return assumed

    def _decide_grant(self, req: PromiseRequest) -> None:
        requester = req.requester
        assumed = self._grant_assumption(req)
        if not self.guard.possible_under(assumed):
            self.sched.send_to_actor(
                self.event, requester,
                PromiseRefuse(target=self.event, requester=requester),
            )
            return
        if (
            not self.sched.policy.promise_chaining
            or self._secured_cube(assumed) is not None
        ):
            self.granted_to.add(requester)
            self.sched.note_promise()
            self.sched.send_to_actor(
                self.event, requester,
                PromiseGrant(target=self.event, requester=requester),
            )
            return
        # Not yet securable: chain further promise requests for the
        # unsecured directional needs and hold the decision.  A
        # demanded request keeps its urgency down the chain, so
        # quiescence escalation pushes whole chains through.
        chain = tuple(req.chain) + (self.event,)
        for target in self._chain_targets(assumed):
            self._request_promise(target, demand=req.demand, chain=chain)
        self.pending_grant_reqs.append(req)

    def _secured_cube(self, assumed: dict[Event, int]):
        """A cube whose directional (eventuality) needs are all met.

        A mask confined to one direction (``{E,P_E}``-side or
        ``{C,P_C}``-side) demands that the base eventually settles that
        way; it is secured when knowledge rules out the other
        direction.  Direction-ambivalent masks (the ``!``-style
        literals) resolve at fire time via certificates, so they are
        not gating here.
        """
        for cube in self.guard.cubes:
            good = True
            for base, mask in cube:
                known = assumed.get(base, FULL)
                if known & mask == 0:
                    good = False
                    break
                e_side = mask & (C_OCC | P_C) == 0
                c_side = mask & (E_OCC | P_E) == 0
                if e_side and known & (C_OCC | P_C):
                    good = False
                    break
                if c_side and known & (E_OCC | P_E):
                    good = False
                    break
            if good:
                return cube
        return None

    def _chain_targets(self, assumed: dict[Event, int]) -> list[Event]:
        """Signed events whose promises would secure some possible cube."""
        targets: list[Event] = []
        for cube in self.guard.cubes:
            if not all(assumed.get(b, FULL) & m for b, m in cube):
                continue
            for base, mask in cube:
                known = assumed.get(base, FULL)
                e_side = mask & (C_OCC | P_C) == 0
                c_side = mask & (E_OCC | P_E) == 0
                if e_side and known & (C_OCC | P_C):
                    targets.append(base)
                elif c_side and known & (E_OCC | P_E):
                    targets.append(base.complement)
        return targets

    def _process_pending_grants(self) -> None:
        pending, self.pending_grant_reqs = self.pending_grant_reqs, []
        for req in pending:
            if self.status in (ActorStatus.OCCURRED, ActorStatus.DEAD):
                # occurrence/death answered via announcements; close out
                message = (
                    PromiseGrant(target=self.event, requester=req.requester)
                    if self.status is ActorStatus.OCCURRED
                    else PromiseRefuse(target=self.event, requester=req.requester)
                )
                self.sched.send_to_actor(self.event, req.requester, message)
                continue
            self._decide_grant(req)

    def on_promise_grant(self, grant: PromiseGrant) -> None:
        mask = DIA_COMP_MASK if grant.target.negated else DIA_MASK
        self.learn(
            grant.target.base, mask, source="promise", origin=grant.target
        )
        self.try_fire()
        if self.status is ActorStatus.PENDING:
            self._solicit()
        self._process_pending_grants()

    def on_promise_refuse(self, refuse: PromiseRefuse) -> None:
        # Allow a later retry if circumstances change.
        for key in [k for k in self.promise_requested if k[0] == refuse.target]:
            del self.promise_requested[key]

    # ------------------------------------------------------------------
    # not-yet certificate protocol (requester side)

    def _start_round(self, bases: list[Event]) -> None:
        targets = [b for b in bases if b.base != self.event.base]
        if not targets:
            return
        self.round_active = True
        self.round_id = self.sched.next_round_id()
        self._knowledge_dirty = False
        self.round_awaiting = {b.base for b in targets}
        self.round_certified = set()
        self.round_holds = set()
        self.sched.note_round()
        if self.sched.tracer.active:
            self.sched.tracer.round_event(
                self.sched.sim.now, self.site, self.event, "start",
                self.round_id,
                targets=[
                    repr(b)
                    for b in sorted(self.round_awaiting, key=Event.sort_key)
                ],
            )
        for base in sorted(self.round_awaiting, key=Event.sort_key):
            self.sched.send_to_base(
                self.event,
                base,
                NotYetRequest(
                    target=base, requester=self.event, round_id=self.round_id
                ),
            )

    def on_not_yet_reply(self, reply: NotYetReply) -> None:
        current = self.round_active and reply.round_id == self.round_id
        if not current or reply.target not in self.round_awaiting:
            if reply.status == "not_yet" and not (
                current and reply.target in self.round_holds
            ):
                # stale certificate (aborted round, or a pre-crash
                # straggler): release the freeze it carries.  A
                # duplicate of a *current* hold is simply ignored.
                self.sched.send_to_base(
                    self.event,
                    reply.target,
                    Release(
                        target=reply.target,
                        requester=self.event,
                        round_id=reply.round_id,
                    ),
                )
            return
        self.round_awaiting.discard(reply.target)
        if reply.status == "not_yet":
            self.round_certified.add(reply.target)
            self.round_holds.add(reply.target)
        elif reply.status == "occurred":
            self.learn(
                reply.target, E_OCC,
                source="not_yet_reply", origin=reply.target,
            )
        elif reply.status == "comp_occurred":
            self.learn(
                reply.target, C_OCC,
                source="not_yet_reply", origin=reply.target.complement,
            )
        if not self.round_awaiting:
            self._conclude_round()

    def _conclude_round(self) -> None:
        transient = dict(self.knowledge)
        for base in self.round_certified:
            transient[base] = transient.get(base, FULL) & NOT_YET_MASK
        if (
            self.status is ActorStatus.PENDING
            and not self.sched.is_frozen(self.event.base, exclude=self.event)
            and self._subsumed_under_transient(transient)
        ):
            if self.sched.tracer.active:
                # the certificate-backed evaluation justifying this
                # firing: the transient facts exist only in this instant
                self.sched.tracer.guard_eval(
                    self.sched.sim.now, self.site, self.event,
                    guard=self._durable_guard, residual=self.guard,
                    verdict="fire", elapsed=0.0,
                    cubes=self._structured_cubes(),
                    knowledge=self._structured_knowledge(transient),
                )
            # _fire finishes the round itself, *after* setting
            # OCCURRED, so deferred certificate requests served during
            # the release see the occurrence.
            self._fire()
            return
        self._finish_round(fired=False)
        self.try_fire()

    def _subsumed_under_transient(self, transient: dict[Event, int]) -> bool:
        """Does the residual fire under knowledge plus this round's
        certificate facts?  Compiled cursors descend along refinement
        edges without moving -- the transient facts exist only for
        this evaluation and are never committed."""
        if self.cursor is not None:
            return self.cursor.transient_verdict(
                (base, NOT_YET_MASK)
                for base in sorted(self.round_certified, key=Event.sort_key)
            ) == "fire"
        return self.guard.region_subsumes(transient)

    def _finish_round(self, fired: bool) -> None:
        if not self.round_active and not self.round_holds:
            return
        rid = self.round_id
        if self.sched.tracer.active and self.round_active:
            op = "conclude" if not self.round_awaiting else "abort"
            self.sched.tracer.round_event(
                self.sched.sim.now, self.site, self.event, op, rid,
                certified=len(self.round_certified),
            )
        # Release still-awaited bases too, not only confirmed holds: an
        # aborted round may have a certificate -- and its freeze -- in
        # flight, or lost outright with a crashed coordinator session.
        # The freeze itself is durable, so without this the lock would
        # be orphaned; releasing a freeze never taken is a no-op, and
        # session FIFO keeps the release behind its own request.
        to_release = self.round_holds | self.round_awaiting
        self.round_holds = set()
        self.round_active = False
        self.round_awaiting = set()
        self.round_certified = set()
        for base in sorted(to_release, key=Event.sort_key):
            self.sched.send_to_base(
                self.event,
                base,
                Release(target=base, requester=self.event, round_id=rid),
            )
        # Requests deferred while this base had an active round may sit
        # at either polarity actor; the scheduler re-serves both.
        self.sched.base_round_finished(self.event.base)

    def serve_deferred_notyet(self) -> None:
        """Re-dispatch certificate requests deferred by the priority rule."""
        deferred, self.deferred_notyet_reqs = self.deferred_notyet_reqs, []
        for req in deferred:
            self.on_not_yet_request(req)

    def cancel_protocols(self) -> None:
        """Abandon any outstanding round and its holds, and refuse any
        held grant requests (called when the complement occurs and
        this actor dies; the caller sets DEAD before invoking)."""
        self._finish_round(fired=False)
        self._process_pending_grants()

    # ------------------------------------------------------------------
    # not-yet certificate protocol (coordinator side; positive actor)

    def on_not_yet_request(self, req: NotYetRequest) -> None:
        requester = req.requester
        base = self.event.base
        settled = self.sched.base_settled(base)
        if settled is None:
            # mid-fire window: our own status flips before the global
            # settlement record is written
            if self.status is ActorStatus.OCCURRED:
                settled = "comp_occurred" if self.event.negated else "occurred"
            elif self.status is ActorStatus.DEAD:
                settled = "occurred" if self.event.negated else "comp_occurred"
        if settled == "occurred":
            self.sched.send_to_actor(
                self.event, requester,
                NotYetReply(
                    target=base,
                    requester=requester,
                    status="occurred",
                    round_id=req.round_id,
                ),
            )
            return
        if settled == "comp_occurred":
            self.sched.send_to_actor(
                self.event, requester,
                NotYetReply(
                    target=base,
                    requester=requester,
                    status="comp_occurred",
                    round_id=req.round_id,
                ),
            )
            return
        if self._defer_notyet(requester):
            self.deferred_notyet_reqs.append(req)
            return
        self.sched.freeze(base, requester, req.round_id)
        self.sched.send_to_actor(
            self.event, requester,
            NotYetReply(
                target=base,
                requester=requester,
                status="not_yet",
                round_id=req.round_id,
            ),
        )

    def _defer_notyet(self, requester: Event) -> bool:
        """Priority rule: defer larger-keyed requesters while we have an
        outstanding round of our own (keeps the wait-for graph acyclic)."""
        if not self.sched.base_has_active_round(self.event.base):
            return False
        return self.event.base.sort_key() < requester.base.sort_key()

    def on_release(self, release: Release) -> None:
        self.sched.unfreeze(self.event.base, release.requester, release.round_id)

    # ------------------------------------------------------------------
    # crash recovery (fail-stop model, see repro.sim.faults)

    def crash_reset(self) -> None:
        """Wipe volatile state at a crash instant.

        Durable (logged) facts survive: the settlement status, the
        attempt timestamp, the durable guard, and the promise
        obligations in ``granted_to`` (a grant is logged before it is
        sent).  Everything else -- knowledge masks, in-flight rounds,
        request dedup, deferred queues, escalation marks -- was heap
        memory and is gone.
        """
        self.guard = self._durable_guard
        self.knowledge = {}
        if self.cursor is not None:
            # resurrection re-enters the automaton at the durable
            # guard's root -- the same interned node every fresh
            # instance of this guard starts from
            self.cursor.reset(self._durable_guard, self.knowledge)
        self.round_active = False
        self.round_id = 0
        self.round_awaiting = set()
        self.round_certified = set()
        self.round_holds = set()
        self._knowledge_dirty = True
        self.promise_requested = {}
        self.deferred_promise_reqs = []
        self.pending_grant_reqs = []
        self.deferred_notyet_reqs = []
        self._escalated_cubes = set()

    def recover(self) -> None:
        """Rebuild knowledge after a restart (solicitation round).

        The actor re-learns its own base from its durable status, then
        asks the coordinator of every base its durable guard mentions
        for the settled facts (:class:`SyncRequest`).  Transient state
        (certificates, promises) is *not* reconstructed -- the normal
        solicitation machinery re-acquires whatever is still needed
        once the settled facts are back.
        """
        if self.sched.tracer.active:
            self.sched.tracer.actor(
                self.sched.sim.now, self.site, self.event, "recovered",
                status=self.status.value,
            )
        if self.status is ActorStatus.OCCURRED:
            self.learn(
                self.event.base, C_OCC if self.event.negated else E_OCC,
                source="durable", origin=self.event,
            )
        elif self.status is ActorStatus.DEAD:
            self.learn(
                self.event.base, E_OCC if self.event.negated else C_OCC,
                source="durable", origin=self.event.complement,
            )
        for base in sorted(self._durable_guard.bases(), key=Event.sort_key):
            if base == self.event.base:
                continue
            self.sched.send_sync(self.event, base)
        self._assimilate()
        self.try_fire()

    def on_sync_reply(self, reply: SyncReply) -> None:
        if reply.status == "occurred":
            self.learn(reply.base, E_OCC, source="sync", origin=reply.base)
        elif reply.status == "comp_occurred":
            self.learn(
                reply.base, C_OCC, source="sync",
                origin=reply.base.complement,
            )
        self._assimilate()
        self.try_fire()
        if self.status is ActorStatus.PENDING:
            self._solicit()
        self._process_pending_grants()
        self.sched.note_sync_reply(self.event)

    def on_sync_request(self, req: SyncRequest) -> None:
        """Coordinator side: report the base's durable settlement.

        A sync request also proves the requester restarted and lost
        its round state, so any freeze it held here is void.
        """
        base = self.event.base
        self.sched.unfreeze_all(base, req.requester)
        status = self.sched.base_settled(base) or "unsettled"
        self.sched.send_to_actor(
            self.event,
            req.requester,
            SyncReply(base=base, requester=req.requester, status=status),
        )

    def on_recovered(self, msg: Recovered) -> None:
        """A peer we may have solicited restarted and lost our requests.

        Clear the request-dedup record for its base (so a re-request
        actually goes out), abort-and-retry any certificate round that
        was awaiting it, drop escalation marks, and re-solicit.
        """
        base = msg.event.base
        for key in [k for k in self.promise_requested if k[0].base == base]:
            del self.promise_requested[key]
        if self.round_active and base in self.round_awaiting:
            self._knowledge_dirty = True  # allow an immediate retry round
            self._finish_round(fired=False)
        self._escalated_cubes = set()
        if self.status is ActorStatus.PENDING:
            self.try_fire()
            if self.status is ActorStatus.PENDING:
                self._solicit()

    # ------------------------------------------------------------------
    # observability (repro.obs.snapshot)

    def snapshot_state(self) -> dict:
        """JSON-ready copy of this actor's state for a global snapshot.

        Everything a debugger needs to see the actor mid-protocol: the
        lifecycle status, the assimilated knowledge masks, the residual
        guard, and the in-flight round/promise bookkeeping."""
        state = {
            "status": self.status.value,
            "site": self.site,
            "attempted_at": self.attempted_at,
            "residual": repr(self.guard),
            "knowledge": self._structured_knowledge(self.knowledge),
        }
        if self.round_active or self.round_holds:
            state["round"] = {
                "active": self.round_active,
                "id": self.round_id,
                "awaiting": sorted(
                    repr(b) for b in self.round_awaiting
                ),
                "certified": sorted(
                    repr(b) for b in self.round_certified
                ),
                "holds": sorted(repr(b) for b in self.round_holds),
            }
        if self.granted_to:
            state["granted_to"] = sorted(
                repr(e) for e in self.granted_to
            )
        return state

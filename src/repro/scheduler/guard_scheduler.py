"""The distributed event-centric scheduler (the paper's contribution).

Guards are synthesized per event at compile time (Section 4.2) and
localized on one actor per signed event, placed at the site of the
task agent the event belongs to (Section 2).  At run time only
messages flow: occurrence announcements, promises, and not-yet
certificates.  There is no central node; the requirement monitors that
trigger triggerable events run at the sites of those events, fed by
the same announcements.

The runner drives scripted task agents, lets the simulator drain, and
then performs *settlement*: unsettled base events have their
complements attempted (the task abandons the transition), one base per
quiescent round so cascades are ordered, until the trace is maximal or
no further progress is possible.
"""

from __future__ import annotations

import random
from typing import Iterable, Mapping

from repro.algebra.expressions import Expr
from repro.algebra.symbols import Event
from repro.scheduler.actors import ActorStatus, EventActor
from repro.scheduler.agents import AgentScript
from repro.scheduler.events import (
    AttemptOutcome,
    EventAttributes,
    ExecutionResult,
    SchedulerPolicy,
    TraceEntry,
    Violation,
)
from repro.scheduler.messages import (
    Announce,
    NotYetReply,
    NotYetRequest,
    PromiseGrant,
    PromiseRefuse,
    PromiseRequest,
    Recovered,
    Release,
    SyncReply,
    SyncRequest,
    TriggerMsg,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.profile import NULL_PROFILER
from repro.obs.provenance import (
    NULL_PROVENANCE,
    Explanation,
    ProvenanceLog,
    explain_actor,
)
from repro.obs.snapshot import Snapshot, SnapshotCoordinator
from repro.obs.timeseries import TimeSeriesRegistry
from repro.obs.tracer import NULL_TRACER
from repro.scheduler.monitors import RequirementMonitor
from repro.sim.clock import Simulator
from repro.sim.faults import ChaosReport, FaultInjector, FaultPlan
from repro.sim.network import BatchingChannel, LatencyModel, Network
from repro.sim.reliable import ReliableNetwork
from repro.temporal.compiled import CompiledGuardEngine
from repro.temporal.cubes import GuardExpr
from repro.temporal.guards import guard_and, guard_table, workflow_guards
from repro.temporal.watch import ALL, WatchIndex, watch_bases

_DEFAULT_ATTRS = EventAttributes()


class DistributedScheduler:
    """Compile a workflow into actors and run it on the simulated network.

    Parameters
    ----------
    dependencies:
        The workflow's dependencies (event-algebra expressions).
    sites:
        Mapping from base event to site name; events sharing a task
        agent share a site.  Unmapped bases live on ``site_of`` their
        name (one site per base) -- fully distributed by default.
    attributes:
        Per-base :class:`EventAttributes`.
    latency / rng:
        Network behaviour; defaults to unit latency, seed 0.
    reliable:
        Route all protocol traffic through the
        :class:`~repro.sim.reliable.ReliableNetwork` session layer
        (exactly-once FIFO over the lossy fabric).  Implied by a
        fault plan: crash recovery is built on the session layer.
    fault_plan:
        Scheduled site crashes/restarts (:class:`FaultPlan`); armed
        when the run starts.
    retransmit_timeout / max_retries:
        Session-layer tuning, forwarded to :class:`ReliableNetwork`.
    batch_announcements:
        Coalesce the announcement fan-out: announcements issued to the
        same site within one virtual instant travel as a single
        envelope (:class:`~repro.sim.network.BatchingChannel`).  Off
        by default; purely a message-count optimization -- the settled
        timeline is unchanged.
    tracer:
        A :class:`repro.obs.Tracer` to record the run as a causal
        Lamport-stamped event trace.  Defaults to the inert
        :data:`~repro.obs.NULL_TRACER`: every instrumentation site is
        guarded on ``tracer.active``, so an untraced run takes the
        same code path as before.
    metrics:
        A :class:`repro.obs.MetricsRegistry`; one is created per run
        by default and reported by :meth:`metrics_report`.  Pass
        ``MetricsRegistry(timed=True)`` to also collect wall-clock
        guard-evaluation latencies.
    provenance:
        Record *why* each actor knows what it knows (which
        announcement / promise / certificate justified each knowledge
        bit), powering :meth:`explain`.  ``None`` (the default)
        follows the tracer: a traced run records provenance, an
        untraced run does not.  Pass ``True``/``False`` to force.
        :meth:`explain` works either way -- without the log it falls
        back to the settlement record for justifications.
    sim / owned / cross_dependencies / gateway:
        Cross-shard execution (see :mod:`repro.scale.engine`).  A
        scheduler normally owns every base it knows about and runs on
        a private simulator; in a coupled shard *group* each member
        scheduler owns only its shard's bases (``owned``), shares one
        ``sim`` with its peers, carries the spanning
        ``cross_dependencies`` whose guards are conjoined onto its
        owned events, and routes protocol traffic for unknown events
        through the ``gateway``.  All four default to the
        single-scheduler behaviour, which is byte-identical to before.
    """

    def __init__(
        self,
        dependencies: Iterable[Expr],
        sites: Mapping[Event, str] | None = None,
        attributes: Mapping[Event, EventAttributes] | None = None,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        guards: Mapping[Event, GuardExpr] | None = None,
        policy: SchedulerPolicy | None = None,
        drop_probability: float = 0.0,
        duplicate_probability: float = 0.0,
        minimize_guards: bool = False,
        reliable: bool = False,
        fault_plan: FaultPlan | None = None,
        retransmit_timeout: float = 4.0,
        max_retries: int = 20,
        batch_announcements: bool = False,
        watch_mode: bool = True,
        compiled_guards: bool | CompiledGuardEngine = False,
        tracer=None,
        metrics: MetricsRegistry | None = None,
        provenance: bool | None = None,
        profiler=None,
        sample_every: float | None = None,
        sim: Simulator | None = None,
        owned: Iterable[Event] | None = None,
        cross_dependencies: Iterable[Expr] | None = None,
        gateway=None,
    ):
        self.dependencies = list(dependencies)
        self.cross_dependencies = list(cross_dependencies or ())
        self._owned = (
            None if owned is None else frozenset(e.base for e in owned)
        )
        self.gateway = gateway
        self.policy = policy or SchedulerPolicy()
        #: compiled-guard automaton store; must exist before any actor
        #: is constructed (``EventActor.__init__`` attaches a cursor
        #: when the scheduler carries an engine).  ``compiled_guards``
        #: may be a :class:`CompiledGuardEngine` to share interned
        #: automata across schedulers (the template "compile once,
        #: stamp instances" path), or ``True`` for a private engine.
        if isinstance(compiled_guards, CompiledGuardEngine):
            self.compiled = compiled_guards
        else:
            self.compiled = CompiledGuardEngine() if compiled_guards else None
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: span profiler with hierarchical phase attribution; the inert
        #: default keeps every instrumentation site a one-branch no-op
        self.profiler = profiler if profiler is not None else NULL_PROFILER
        record_provenance = (
            self.tracer.active if provenance is None else provenance
        )
        self.provenance = (
            ProvenanceLog() if record_provenance else NULL_PROVENANCE
        )
        self.sim = sim if sim is not None else Simulator()
        self.network = Network(
            self.sim,
            latency=latency,
            rng=rng,
            drop_probability=drop_probability,
            duplicate_probability=duplicate_probability,
            tracer=self.tracer,
            profiler=self.profiler,
        )
        self.faults: FaultInjector | None = None
        if fault_plan is not None:
            reliable = True  # recovery is built on the session layer
            self.faults = FaultInjector(self.sim, fault_plan, tracer=self.tracer)
        self.reliable = reliable
        #: where protocol messages travel: the raw fabric, or the
        #: exactly-once FIFO session layer on top of it
        self.channel = (
            ReliableNetwork(
                self.network,
                faults=self.faults,
                timeout=retransmit_timeout,
                max_retries=max_retries,
            )
            if reliable
            else self.network
        )
        if batch_announcements:
            # coalesce the announcement fan-out: one envelope per
            # (src, dst) pair per virtual instant (see BatchingChannel)
            self.channel = BatchingChannel(self.channel, self.sim)
        if self.faults is not None:
            self.faults.on_crash(self._crash_site)
            # restart order matters: sessions first, then the actors'
            # recovery protocol runs over the fresh sessions
            self.faults.on_restart(self.channel.reset_site)
            self.faults.on_restart(self._recover_site)
        self._recovering: dict[str, dict] = {}
        self._recovery_latencies: list[float] = []
        self._round_counter = 0
        self._sites = {e.base: s for e, s in (sites or {}).items()}
        self._attributes = {e.base: a for e, a in (attributes or {}).items()}
        self.result = ExecutionResult()
        #: signed events currently parked (drives the depth gauge)
        self._parked_now: set[Event] = set()
        #: park times, for the lifecycle latency histograms
        self._parked_at: dict[Event, float] = {}
        #: global snapshot protocol driver (lazy list of snapshots)
        self.snapshots = SnapshotCoordinator(self)

        if guards is not None:
            table = dict(guards)
        elif self.profiler.active:
            self.profiler.push("synthesis")
            try:
                table = workflow_guards(self.dependencies)
            finally:
                self.profiler.pop()
        else:
            table = workflow_guards(self.dependencies)
        # cross-shard dependencies constrain our *owned* events too:
        # conjoin each spanning dependency's guard contribution onto
        # the owned side of its alphabet.  The remote bases those
        # guards mention get no actors here -- their occurrences
        # arrive through the gateway as routed announcements
        # (:meth:`observe_remote`), waking the same watch indexes a
        # local announcement would.
        for dep in self.cross_dependencies:
            for event, contribution in sorted(
                guard_table(dep).items(), key=lambda kv: kv[0].sort_key()
            ):
                if not self._owns(event.base):
                    continue
                existing = table.get(event)
                table[event] = (
                    contribution
                    if existing is None
                    else guard_and([existing, contribution])
                )
        if minimize_guards:
            from repro.temporal.simplify import minimize

            table = {event: minimize(g) for event, g in table.items()}
        self.actors: dict[Event, EventActor] = {}
        for event, g in table.items():
            self.actors[event] = EventActor(
                event, g, self.site_of(event.base), self
            )
        # subscriptions: actors whose guard mentions a base hear about it
        self._subscribers: dict[Event, list[Event]] = {}
        for event, actor in self.actors.items():
            for base in actor.guard.bases():
                self._subscribers.setdefault(base, []).append(event)
        #: watched-literal wake index: an announcement only wakes the
        #: actors whose residual (or armed protocol state) can react;
        #: the rest take the learn-only skip path.  ``watch_mode=False``
        #: is the naive reference engine the differential harness
        #: compares against.
        self.watch_mode = watch_mode
        self.watch = WatchIndex()
        if self.watch_mode:
            for actor in self.actors.values():
                self._rewatch(actor)
        # per-site requirement monitors for triggerable events
        self._monitors: list[tuple[str, RequirementMonitor]] = []
        self._monitor_subs: dict[Event, list[int]] = {}
        #: construction spec per monitor index, kept so a crashed
        #: site's monitors can be rebuilt and resynced
        self._monitor_specs: list[tuple[list[Expr], frozenset[Event]]] = []
        self._build_monitors()
        # base -> holders; a holder is (requester, round_id) so a stale
        # release (from an aborted round) cannot void a newer freeze
        self._frozen: dict[Event, set[tuple[Event, int]]] = {}
        self._settled: dict[Event, Event] = {}  # base -> signed occurrence
        self._waiters: dict[Event, list] = {}  # base -> callbacks on settle
        self._no_progress_bases: set[Event] = set()
        #: sampled telemetry series (None until enabled); the sampler
        #: only reads state, so an instrumented run stays bit-identical
        self.timeseries: TimeSeriesRegistry | None = None
        self._sampler = None
        if sample_every is not None:
            self.enable_timeseries(sample_every)

    # ------------------------------------------------------------------
    # construction helpers

    def site_of(self, base: Event) -> str:
        return self._sites.get(base.base, f"site_{base.base.name}")

    def _owns(self, base: Event) -> bool:
        """Does this scheduler host ``base``'s actors?  Always true
        outside a shard group."""
        return self._owned is None or base.base in self._owned

    def attributes(self, base: Event) -> EventAttributes:
        return self._attributes.get(base.base, _DEFAULT_ATTRS)

    def _build_monitors(self) -> None:
        triggerable = {
            b for b in self._all_bases() if self.attributes(b).triggerable
        }
        by_site: dict[str, set[Event]] = {}
        for b in triggerable:
            by_site.setdefault(self.site_of(b), set()).add(b)
        for site, bases in sorted(by_site.items()):
            deps = [
                d for d in self.dependencies + self.cross_dependencies
                if any(b in d.bases() for b in bases)
            ]
            if not deps:
                continue
            monitor = RequirementMonitor(
                deps,
                frozenset(bases),
                trigger=self._make_trigger(site),
                doomed=self._note_doomed,
                site=site,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            monitor.bind_clock(lambda: self.sim.now)
            index = len(self._monitors)
            self._monitors.append((site, monitor))
            self._monitor_specs.append((deps, frozenset(bases)))
            for dep in deps:
                for base in dep.bases():
                    self._monitor_subs.setdefault(base, []).append(index)

    def _make_trigger(self, site: str):
        def do_trigger(event: Event) -> None:
            self.result.triggered += 1
            self.channel.send(
                site,
                self.site_of(event.base),
                TriggerMsg.kind,
                TriggerMsg(event=event),
                lambda msg: self.attempt(msg.event),
            )

        return do_trigger

    def _note_doomed(self, dep: Expr, residual: Expr) -> None:
        self.result.violations.append(
            Violation("doomed", f"{dep!r} has no accepting completion ({residual!r})")
        )

    def _all_bases(self) -> frozenset[Event]:
        bases: set[Event] = set()
        for d in self.dependencies:
            bases |= d.bases()
        for d in self.cross_dependencies:
            bases |= d.bases()
        if self._owned is not None:
            bases = {b for b in bases if b.base in self._owned}
        return frozenset(bases)

    # ------------------------------------------------------------------
    # actor-facing services

    def send_to_actor(self, src_event: Event, dst_event: Event, message) -> None:
        actor = self.actors.get(dst_event)
        if actor is None:
            if self.gateway is not None:
                self.gateway.route(self, src_event, dst_event, message)
            return
        self.channel.send(
            self.site_of(src_event.base),
            actor.site,
            message.kind,
            message,
            lambda msg: self._dispatch(actor, msg),
        )

    def send_to_base(self, src_event: Event, base: Event, message) -> None:
        """Route to the base's coordinator (its positive actor)."""
        coordinator = self.actors.get(base.base)
        if coordinator is None:
            coordinator = self.actors.get(base.base.complement)
        if coordinator is None:
            if self.gateway is not None:
                self.gateway.route_base(self, src_event, base, message)
            return
        self.channel.send(
            self.site_of(src_event.base),
            coordinator.site,
            message.kind,
            message,
            lambda msg: self._dispatch(coordinator, msg),
        )

    def _rewatch(self, actor: EventActor) -> None:
        """Refresh the actor's wake set after its state may have moved.

        The wake set is the reduced residual's base support, except
        that an actor that would take a protocol action from *any*
        knowledge tick (re-solicit, held grant decisions) or whose
        residual is not yet reduced under its knowledge must wake on
        everything -- see :mod:`repro.temporal.watch` for why each
        widening is required for exact equivalence with the naive
        engine.  Over-wide entries are always safe (a woken actor runs
        exactly the naive path), so staleness between hooks can only
        cost a wake, never correctness."""
        if not self.watch_mode:
            return
        if actor.pending_grant_reqs or actor.solicit_would_act():
            self.watch.register(actor.event, ALL)
            return
        if actor.cursor is not None:
            # composed engines: the wake set is a cached slot on the
            # actor's current automaton node, not a recomputation
            self.watch.register(actor.event, actor.cursor.watches())
            return
        self.watch.register(
            actor.event, watch_bases(actor.guard, actor.knowledge)
        )

    def _rewatch_base(self, base: Event) -> None:
        """Refresh both polarity actors of ``base``."""
        for event in (base.base, base.base.complement):
            actor = self.actors.get(event)
            if actor is not None:
                self._rewatch(actor)

    def _dispatch(self, actor: EventActor, message) -> None:
        if isinstance(message, Announce):
            if self.watch_mode and not self.watch.should_wake(
                actor.event, message.event.base
            ):
                # the watched-literal skip: record the fact, touch
                # nothing else -- the index proved re-evaluation would
                # be a no-op (and the learn cannot invalidate any
                # registered wake set, so no re-watch is needed)
                self.watch.note_skip()
                actor.note_occurrence(message.event)
                return
            self.watch.note_wake()
            if self.profiler.active:
                self.profiler.push(
                    "watch_wake", site=actor.site, event=actor.event_label
                )
                try:
                    actor.observe_occurrence(message.event)
                finally:
                    self.profiler.pop()
            else:
                actor.observe_occurrence(message.event)
        elif isinstance(message, PromiseRequest):
            actor.on_promise_request(message)
        elif isinstance(message, PromiseGrant):
            actor.on_promise_grant(message)
        elif isinstance(message, PromiseRefuse):
            actor.on_promise_refuse(message)
        elif isinstance(message, NotYetRequest):
            actor.on_not_yet_request(message)
        elif isinstance(message, NotYetReply):
            actor.on_not_yet_reply(message)
        elif isinstance(message, Release):
            actor.on_release(message)
        elif isinstance(message, SyncRequest):
            actor.on_sync_request(message)
        elif isinstance(message, SyncReply):
            actor.on_sync_reply(message)
        elif isinstance(message, Recovered):
            actor.on_recovered(message)
        else:  # pragma: no cover
            raise TypeError(f"unroutable message: {message!r}")
        # every full delivery can move the actor's guard, knowledge,
        # or protocol arming -- refresh its wake set
        self._rewatch(actor)

    def base_settled(self, base: Event) -> str | None:
        signed = self._settled.get(base.base)
        if signed is None:
            return None
        return "comp_occurred" if signed.negated else "occurred"

    def base_has_active_round(self, base: Event) -> bool:
        for event in (base.base, base.base.complement):
            actor = self.actors.get(event)
            if actor is not None and actor.round_active:
                return True
        return False

    def base_round_finished(self, base: Event) -> None:
        """A round on this base ended: serve deferred certificate
        requests held by either polarity actor."""
        if self.base_has_active_round(base):
            return
        for event in (base.base, base.base.complement):
            actor = self.actors.get(event)
            if actor is not None:
                actor.serve_deferred_notyet()
        self._rewatch_base(base)

    def freeze(self, base: Event, requester: Event, round_id: int = 0) -> None:
        self._frozen.setdefault(base.base, set()).add((requester, round_id))

    def unfreeze(self, base: Event, requester: Event, round_id: int = 0) -> None:
        self._release_holds(base, lambda holder: holder == (requester, round_id))

    def unfreeze_all(self, base: Event, requester: Event) -> None:
        """Void every freeze ``requester`` holds on ``base``.

        Used by recovery: a sync request proves the requester restarted
        and lost its round state, so its holds can never be released by
        the normal protocol."""
        self._release_holds(base, lambda holder: holder[0] == requester)

    def _release_holds(self, base: Event, predicate) -> None:
        holders = self._frozen.get(base.base)
        if holders is None:
            return
        victims = {h for h in holders if predicate(h)}
        if not victims:
            return
        holders -= victims
        if not holders:
            del self._frozen[base.base]
            for event in (base.base, base.base.complement):
                actor = self.actors.get(event)
                if actor is not None:
                    actor.try_fire()
            self._rewatch_base(base)

    def is_frozen(self, base: Event, exclude: Event | None = None) -> bool:
        holders = self._frozen.get(base.base, set())
        if exclude is not None:
            holders = {h for h in holders if h[0] != exclude}
        return bool(holders)

    def next_round_id(self) -> int:
        """A fresh certificate-round id (unique across the run)."""
        self._round_counter += 1
        return self._round_counter

    def note_parked(self, event: Event) -> None:
        self.result.parked_total += 1
        site = self.site_of(event.base)
        self.metrics.inc("parked", site=site)
        if event not in self._parked_now:
            self._parked_now.add(event)
            self.metrics.gauge_adjust("parked_depth", 1, site=site)
            self._parked_at[event] = self.sim.now
            actor = self.actors.get(event)
            if actor is not None and actor.attempted_at is not None:
                self.metrics.observe(
                    "lifecycle_attempt_to_park",
                    self.sim.now - actor.attempted_at,
                    site=site,
                )
        if self.tracer.active:
            self.tracer.actor(self.sim.now, site, event, "parked")

    def _unpark(self, event: Event) -> float | None:
        """Clear the parked state; returns when the event parked (or
        None if it was not parked) for the lifecycle histograms."""
        if event in self._parked_now:
            self._parked_now.discard(event)
            self.metrics.gauge_adjust(
                "parked_depth", -1, site=self.site_of(event.base)
            )
        return self._parked_at.pop(event, None)

    def note_promise(self) -> None:
        self.result.promises_granted += 1
        self.metrics.inc("promises_granted")

    def note_round(self) -> None:
        self.result.not_yet_rounds += 1
        self.metrics.inc("not_yet_rounds")

    def note_forced(self, event: Event) -> None:
        self.result.violations.append(
            Violation("forced", f"nonrejectable {event!r} accepted against its guard")
        )

    def request_trigger(self, event: Event) -> None:
        """A promise request arrived for an idle triggerable event."""
        self.result.triggered += 1
        self.attempt(event)

    def notify_rejected(self, event: Event) -> None:
        """Permanent rejection: the agent settles the complement."""
        parked_since = self._unpark(event)
        site = self.site_of(event.base)
        if parked_since is not None:
            self.metrics.observe(
                "lifecycle_park_to_reject", self.sim.now - parked_since,
                site=site,
            )
        self.metrics.inc("rejected", site=site)
        if self.attributes(event.base).auto_complement:
            comp = event.complement
            actor = self.actors.get(comp)
            if actor is not None and actor.status is ActorStatus.IDLE:
                self.attempt(comp)

    def record_occurrence(self, actor: EventActor) -> None:
        event = actor.event
        self._settled[event.base] = event
        outcome = AttemptOutcome.ACCEPTED
        attempted_at = actor.attempted_at if actor.attempted_at is not None else self.sim.now
        self.result.entries.append(
            TraceEntry(event, self.sim.now, attempted_at, outcome)
        )
        parked_since = self._unpark(event)
        self.metrics.inc("fired", site=actor.site)
        self.metrics.observe(
            "time_to_allow", self.sim.now - attempted_at, site=actor.site
        )
        if parked_since is not None:
            self.metrics.observe(
                "lifecycle_park_to_fire", self.sim.now - parked_since,
                site=actor.site,
            )
        if self.tracer.active:
            self.tracer.actor(
                self.sim.now, actor.site, event, "fired",
                waited=self.sim.now - attempted_at,
            )
        # complement actor is dead now; release anything it held
        comp = self.actors.get(event.complement)
        if comp is not None:
            comp.status = ActorStatus.DEAD
            self._unpark(comp.event)
            if self.tracer.active:
                self.tracer.actor(self.sim.now, comp.site, comp.event, "dead")
            comp.cancel_protocols()
        self._rewatch_base(event)
        self._fanout_occurrence(event)
        if self.gateway is not None:
            self.gateway.announce_from(self, event)

    def _fanout_occurrence(self, event: Event) -> None:
        """Fan an occurrence out to everything that listens locally:
        guard subscribers, settlement waiters, requirement monitors.
        Shared by local settlement (:meth:`record_occurrence`) and
        routed remote announcements (:meth:`observe_remote`)."""
        # announcements to guard subscribers
        for sub_event in self._subscribers.get(event.base, ()):
            if sub_event.base == event.base:
                continue
            self.send_to_actor(event, sub_event, Announce(event=event))
        # settlement waiters (agent-script ``after`` gates)
        for callback in self._waiters.pop(event.base, ()):
            callback()
        # requirement monitors
        for index in self._monitor_subs.get(event.base, ()):
            site, monitor = self._monitors[index]
            self.channel.send(
                self.site_of(event.base),
                site,
                "announce",
                event,
                (lambda m: (lambda ev: m.observe(ev)))(monitor),
            )

    def observe_remote(self, event: Event) -> None:
        """A routed announcement from another shard: ``event`` settled
        at its owner.

        Receiver-side dedup on the settlement map makes redelivery
        (session-layer retransmit racing an ack, or a duplicate on the
        raw fabric) idempotent.  The fact is recorded and fanned out
        exactly like a local occurrence -- watched-literal wake
        indexes decide who reacts, so guard-eval counts stay flat --
        but no trace entry is appended: the owner shard's trace is the
        single source of truth for the merged timeline.
        """
        base = event.base
        if self._settled.get(base) is not None:
            self.metrics.inc("remote_duplicates")
            return
        self._settled[base] = event
        self.metrics.inc("remote_announcements")
        self._fanout_occurrence(event)
        # remote progress can revive bases we had given up settling
        self._no_progress_bases.clear()

    # ------------------------------------------------------------------
    # run-time workflow modification (Section 1: "declarative
    # primitives ... facilitate run-time modifications of workflows,
    # e.g., in response to exception conditions"; Section 6:
    # "cross-system dependencies can be removed")

    ADMIN_SITE = "admin"

    def _settled_sequence(self) -> list[Event]:
        return [entry.event for entry in self.result.entries]

    def add_dependency_runtime(self, dependency: Expr) -> bool:
        """Add a dependency mid-run.

        The dependency is residuated by the events that already
        occurred; the residual's guards are conjoined onto the
        affected actors via costed reconfiguration messages.  Returns
        False (and records a violation) when history has already
        violated the dependency -- the past cannot be enforced.
        """
        from repro.algebra.expressions import Zero
        from repro.algebra.residuation import residuate_trace
        from repro.temporal.guards import guard as synthesize_guard

        residual = residuate_trace(dependency, self._settled_sequence())
        if isinstance(residual, Zero):
            self.result.violations.append(
                Violation(
                    "retroactive",
                    f"{dependency!r} is already violated by the history; "
                    "not added",
                )
            )
            return False
        from repro.temporal.cubes import TRUE_GUARD

        self.dependencies.append(dependency)
        for event in sorted(residual.alphabet(), key=Event.sort_key):
            actor = self.actors.get(event)
            if actor is None:
                # the dependency brings new events into the system:
                # spin up their actors (initially unconstrained)
                actor = EventActor(
                    event, TRUE_GUARD, self.site_of(event.base), self
                )
                self.actors[event] = actor
            contribution = synthesize_guard(residual, event)
            for base in contribution.bases():
                subs = self._subscribers.setdefault(base, [])
                if event not in subs:
                    subs.append(event)
            # apply synchronously (an administrative operation must
            # not race in-flight attempts) but cost the message
            self.channel.send(
                self.ADMIN_SITE, actor.site, "reconfigure",
                contribution, lambda _payload: None,
            )
            actor.strengthen_guard(contribution)
            self._rewatch(actor)
        self._rebuild_monitors()
        return True

    def remove_dependency_runtime(self, dependency: Expr) -> bool:
        """Remove a dependency mid-run.

        Affected actors get recomputed guards (over the remaining
        dependencies, residuated by history); parked attempts that the
        removed dependency alone was blocking fire once the
        reconfiguration messages arrive.
        """
        from repro.algebra.expressions import Top, Zero
        from repro.algebra.residuation import residuate_trace
        from repro.temporal.cubes import TRUE_GUARD
        from repro.temporal.guards import guard as synthesize_guard, guard_and

        if dependency not in self.dependencies:
            return False
        self.dependencies.remove(dependency)
        settled = self._settled_sequence()
        residuals = [
            residuate_trace(dep, settled) for dep in self.dependencies
        ]
        for event in sorted(dependency.alphabet(), key=Event.sort_key):
            actor = self.actors.get(event)
            if actor is None:
                continue
            relevant = [
                r
                for dep, r in zip(self.dependencies, residuals)
                if event.base in dep.bases() and not isinstance(r, Top)
            ]
            new_guard = guard_and(
                synthesize_guard(r, event) for r in relevant
            ) if relevant else TRUE_GUARD  # Zero residuals yield G=0
            self.channel.send(
                self.ADMIN_SITE, actor.site, "reconfigure",
                new_guard, lambda _payload: None,
            )
            actor.replace_guard(new_guard)
            self._rewatch(actor)
        self._rebuild_monitors()
        return True

    def _rebuild_monitors(self) -> None:
        """Recreate requirement monitors after a modification and
        replay the settled history into them."""
        self._monitors = []
        self._monitor_subs = {}
        self._monitor_specs = []
        self._build_monitors()
        for _site, monitor in self._monitors:
            for event in self._settled_sequence():
                monitor.observe(event)

    # ------------------------------------------------------------------
    # crash recovery (see repro.sim.faults for the fault model)

    def _site_actors(self, site: str) -> list[EventActor]:
        return [
            a
            for a in sorted(
                self.actors.values(), key=lambda a: a.event.sort_key()
            )
            if a.site == site
        ]

    def _crash_site(self, site: str) -> None:
        """Crash hook: the site's actors lose their volatile state."""
        for actor in self._site_actors(site):
            actor.crash_reset()
            self._rewatch(actor)

    def _recover_site(self, site: str) -> None:
        """Restart hook: run the recovery protocol for the site.

        Each actor re-learns the durable settlement facts its guard
        depends on (sync round); peers that may hold requests against
        the restarted actors are told to re-solicit
        (:class:`Recovered` broadcast); the site's requirement
        monitors are rebuilt and resynced from the coordinators'
        durable logs.  Recovery latency is measured from here until
        the last sync reply for the site arrives.
        """
        self._recovering[site] = {"started": self.sim.now, "outstanding": 0}
        if self.tracer.active:
            self.tracer.sync(self.sim.now, site, "begin")
        if self.profiler.active:
            self.profiler.push("sync_round", site=site)
            try:
                self._recover_site_body(site)
            finally:
                self.profiler.pop()
        else:
            self._recover_site_body(site)

    def _recover_site_body(self, site: str) -> None:
        restarted = self._site_actors(site)
        for actor in restarted:
            actor.recover()
            self._rewatch(actor)
        announced: set[Event] = set()
        for actor in restarted:
            base = actor.event.base
            # settled bases are broadcast too: a peer may be mid-round
            # on this base with its reply lost in the crash
            if base in announced:
                continue
            announced.add(base)
            settled = self._settled.get(base)
            for sub_event in self._subscribers.get(base, ()):
                if sub_event.base == base:
                    continue
                if settled is not None:
                    # the settlement announcement may have died with
                    # the crashed site's sender state: re-announce
                    # (idempotent at every receiver), and in session
                    # order *before* Recovered so a re-solicit already
                    # sees the fact
                    self.send_to_actor(
                        actor.event, sub_event, Announce(event=settled)
                    )
                self.send_to_actor(actor.event, sub_event, Recovered(event=actor.event))
        self._recover_monitors(site)
        record = self._recovering.get(site)
        if record is not None and record["outstanding"] <= 0:
            # nothing to resync: recovery is instantaneous
            self._finish_recovery(site, record)

    def _finish_recovery(self, site: str, record: dict) -> None:
        latency = self.sim.now - record["started"]
        self._recovery_latencies.append(latency)
        del self._recovering[site]
        self.metrics.observe("recovery_latency", latency, site=site)
        if self.tracer.active:
            self.tracer.sync(self.sim.now, site, "complete", latency=latency)

    def send_sync(self, requester: Event, base: Event) -> None:
        """Route a recovery :class:`SyncRequest` to ``base``'s coordinator."""
        record = self._recovering.get(self.site_of(requester.base))
        if record is not None:
            record["outstanding"] += 1
        self.send_to_base(
            requester, base, SyncRequest(base=base, requester=requester)
        )

    def note_sync_reply(self, requester: Event) -> None:
        """A sync reply landed; close out the site's recovery window."""
        site = self.site_of(requester.base)
        if self.tracer.active:
            self.tracer.sync(self.sim.now, site, "reply", event=repr(requester))
        record = self._recovering.get(site)
        if record is None:
            return
        record["outstanding"] -= 1
        if record["outstanding"] <= 0:
            self._finish_recovery(site, record)

    def _recover_monitors(self, site: str) -> None:
        for index, (monitor_site, _monitor) in enumerate(self._monitors):
            if monitor_site != site:
                continue
            deps, bases = self._monitor_specs[index]
            fresh = RequirementMonitor(
                deps,
                bases,
                trigger=self._make_trigger(site),
                doomed=self._note_doomed,
                site=site,
                tracer=self.tracer,
                metrics=self.metrics,
            )
            fresh.bind_clock(lambda: self.sim.now)
            self._monitors[index] = (site, fresh)
            self._resync_monitor(site, fresh, deps)

    def _resync_monitor(
        self, site: str, monitor: RequirementMonitor, deps: list[Expr]
    ) -> None:
        """Replay the settled history into a rebuilt monitor.

        One sync round-trip per base it watches; replies carry the
        occurrence *index* so the replay preserves trace order even
        though replies from different coordinators interleave.
        """
        targets = sorted(
            {b for dep in deps for b in dep.bases()}, key=Event.sort_key
        )
        if not targets:
            monitor.evaluate()
            return
        state: dict = {"waiting": len(targets), "facts": []}

        def finish() -> None:
            if self.profiler.active:
                self.profiler.push("monitor_sync", site=site)
                try:
                    for _index, event in sorted(
                        state["facts"], key=lambda f: f[0]
                    ):
                        monitor.observe(event)
                    monitor.evaluate()
                finally:
                    self.profiler.pop()
                return
            for _index, event in sorted(state["facts"], key=lambda f: f[0]):
                monitor.observe(event)
            monitor.evaluate()

        def on_reply(payload) -> None:
            state["waiting"] -= 1
            if payload is not None:
                state["facts"].append(payload)
            if state["waiting"] == 0:
                finish()

        for base in targets:
            coordinator_site = self.site_of(base)

            def serve(_query, b=base, coord=coordinator_site) -> None:
                # runs at the coordinator: consult its durable
                # settlement log for the base
                signed = self._settled.get(b.base)
                payload = None
                if signed is not None:
                    index = next(
                        i
                        for i, entry in enumerate(self.result.entries)
                        if entry.event == signed
                    )
                    payload = (index, signed)
                self.channel.send(coord, site, SyncReply.kind, payload, on_reply)

            self.channel.send(
                site, coordinator_site, SyncRequest.kind, base, serve
            )

    def chaos_report(self) -> ChaosReport:
        """Summary of injected faults and the protocol's response."""
        return ChaosReport.collect(
            self.network.stats, self.faults, self._recovery_latencies
        )

    def metrics_report(self) -> dict:
        """JSON-ready metrics: the registry plus the network counters.

        The ``network`` section is :meth:`NetworkStats.as_dict` --
        messages by kind, retransmissions, session-layer accounting --
        the ``kernel`` section snapshots the symbolic kernel's caches
        (intern tables, residual closures, guard memos; see
        :func:`repro.temporal.guards.kernel_stats`), and the rest is
        the per-site registry (parked depth, guard-eval latency,
        time-to-allow, ...)."""
        from repro.temporal.guards import kernel_stats

        report = self.metrics.as_dict()
        report["network"] = self.network.stats.as_dict()
        report["kernel"] = kernel_stats()
        # overlay this scheduler's own wake/skip/re-watch counts over
        # the process-wide totals (several schedulers can share one
        # process; the per-run numbers are the meaningful ones)
        report["kernel"]["watch"] = dict(
            report["kernel"]["watch"], **self.watch.counts()
        )
        if self.compiled is not None:
            report["kernel"]["compiled"] = dict(
                report["kernel"]["compiled"], **self.compiled.counts()
            )
        if self.timeseries is not None:
            report["timeseries"] = self.timeseries.as_dict()
        if self.faults is not None:
            report["faults"] = {
                "crashes": self.faults.crash_count,
                "restarts": self.faults.restart_count,
            }
        recorder = self.tracer.recorder_stats()
        if recorder is not None:
            report["recorder"] = recorder
        return report

    # ------------------------------------------------------------------
    # observability: decision provenance and global snapshots

    def explain(self, event: Event) -> Explanation:
        """Why is ``event`` in the state it is in?

        Classifies every literal of the actor's guard against its
        current knowledge, names the announcements/promises that
        justified the satisfied literals, and -- for a parked event --
        computes minimal sets of future announcements that would let
        it fire.  Built on demand: an undisturbed run pays nothing.
        """
        actor = self.actors.get(event)
        if actor is None:
            raise KeyError(
                f"no actor for {event!r}; is it in the workflow alphabet?"
            )
        return explain_actor(self, actor)

    def snapshot_sites(self) -> list[str]:
        """Every site participating in the snapshot protocol."""
        sites = {a.site for a in self.actors.values()}
        sites.update(site for site, _m in self._monitors)
        return sorted(sites)

    def site_state(self, site: str) -> dict:
        """JSON-ready local state of ``site`` for a snapshot record:
        its actors, which of its bases are settled/frozen, its parked
        attempts, and its requirement monitors."""
        actors = {
            repr(a.event): a.snapshot_state() for a in self._site_actors(site)
        }
        def local(base: Event) -> bool:
            return self.site_of(base) == site

        return {
            "actors": actors,
            "parked": sorted(
                repr(e) for e in self._parked_now if local(e.base)
            ),
            "frozen": {
                repr(base): sorted(
                    f"{holder!r}#{round_id}"
                    for holder, round_id in holders
                )
                for base, holders in sorted(
                    self._frozen.items(), key=lambda kv: kv[0].sort_key()
                )
                if local(base)
            },
            "settled": {
                repr(base): repr(signed)
                for base, signed in sorted(
                    self._settled.items(), key=lambda kv: kv[0].sort_key()
                )
                if local(base)
            },
            "monitors": [
                monitor.snapshot_state()
                for m_site, monitor in self._monitors
                if m_site == site
            ],
        }

    def _set_delivery_hook(self, hook) -> None:
        """Install (or clear) the snapshot coordinator's channel hook
        on the transport that performs application delivery.

        A :class:`BatchingChannel` proxies attribute *reads* to its
        inner channel but takes attribute writes itself, so the hook
        must land on the unwrapped transport."""
        channel = self.channel
        if isinstance(channel, BatchingChannel):
            channel = channel.inner
        channel.delivery_hook = hook

    def snapshot(self, wait: bool = True) -> Snapshot | None:
        """Take a consistent global snapshot now.

        With ``wait`` (the default) the simulator runs until the
        marker protocol finishes, so the returned snapshot is complete
        unless a permanently-dead site can never be cut.  Inside a
        running simulation pass ``wait=False`` and let the markers
        interleave with the workload."""
        snap = self.snapshots.initiate()
        if snap is not None and wait:
            self.sim.run()
        return snap

    def schedule_snapshots(self, every: float) -> None:
        """Snapshot periodically while the run is making progress.

        Each tick snapshots only if fresh application traffic flowed
        since the last tick (markers, acks, and retransmissions are
        excluded from the activity measure -- otherwise retransmitting
        toward a permanently-dead site would count as progress and the
        ticker would never stop); an in-flight snapshot is left to
        finish as long as markers keep landing, and only replaced when
        it has stalled for several ticks *and* the workload has since
        moved on.  The ticker stops for good once the simulator has
        nothing further scheduled."""
        if every <= 0:
            raise ValueError("snapshot interval must be positive")

        state = {"last": -1, "progress": None, "stalls": 0}

        def tick() -> None:
            active = self.snapshots._active
            seen = self.network.stats.fresh_payloads()
            if active is not None:
                progress = (active.id, len(active._awaiting))
                if progress != state["progress"]:
                    # markers are landing: let the snapshot finish
                    state["progress"] = progress
                    state["stalls"] = 0
                    self.sim.schedule(every, tick)
                    return
                state["stalls"] += 1
                if state["stalls"] < 3 or seen == state["last"]:
                    # mid-retransmit-backoff, or nothing new worth
                    # capturing: keep waiting while anything is queued
                    if self.sim.pending > 0:
                        self.sim.schedule(every, tick)
                    return
                # genuinely stuck and the run moved on: start over
                # (initiate() abandons the stalled one)
            state["progress"] = None
            state["stalls"] = 0
            if seen != state["last"]:
                state["last"] = seen
                self.snapshots.initiate()
                self.sim.schedule(every, tick)
            elif self.sim.pending > 0:
                self.sim.schedule(every, tick)
            # else: quiescent and nothing new happened -- stop

        self.sim.schedule(every, tick)

    # ------------------------------------------------------------------
    # observability: sampled time series

    def enable_timeseries(self, every: float) -> TimeSeriesRegistry:
        """Sample telemetry gauges every ``every`` units of sim time.

        Series: parked events, session-layer channel backlog,
        network-level in-flight messages, simulator heap depth, and
        per-interval deltas of fires/settlements/messages.  Sampling
        piggybacks on the simulator's clock advance
        (:meth:`Simulator.sample_every`): it is read-only, adds no
        heap events, and never changes the makespan or message
        streams; :meth:`run` takes one closing sample at quiescence so
        the series end at the final state.
        """
        if self.timeseries is None:
            self.timeseries = TimeSeriesRegistry(interval=every)
            self._sampler = self.sim.sample_every(every, self._sample)
        return self.timeseries

    def _session_backlog(self) -> int:
        """Unacknowledged session-layer payloads (0 on a raw channel)."""
        channel = self.channel
        if isinstance(channel, BatchingChannel):
            channel = channel.inner
        if isinstance(channel, ReliableNetwork):
            return channel.in_flight()
        return 0

    def _sample(self, t: float) -> None:
        ts = self.timeseries
        ts.record("parked_events", t, len(self._parked_now))
        ts.record("channel_backlog", t, self._session_backlog())
        ts.record("inflight_messages", t, self.network.inflight)
        ts.record("sim_pending", t, self.sim.pending)
        ts.record_total("fires_per_interval", t, self.metrics.counter("fired"))
        ts.record_total("settlements_per_interval", t, len(self._settled))
        ts.record_total(
            "messages_per_interval", t, self.network.stats.messages
        )

    # ------------------------------------------------------------------
    # driving a run

    def attempt(self, event: Event, at: float | None = None) -> None:
        actor = self.actors.get(event)
        if actor is None:
            raise KeyError(f"no actor for {event!r}; is it in the workflow alphabet?")
        if self.faults is not None and self.faults.is_down(actor.site):
            restart = self.faults.restart_time(actor.site)
            if restart is not None:
                # the task agent retries once its site is back up; a
                # permanently-failed site simply loses the attempt
                self.sim.schedule_at(restart, lambda: self.attempt(event))
            return
        attempted_at = self.sim.now if at is None else at
        actor.attempt(attempted_at)
        self._rewatch(actor)

    def schedule_script(self, script: AgentScript) -> None:
        """Schedule an agent's attempts, honouring its ``after`` gates."""
        for attempt in script.attempts:
            self._schedule_attempt(script, attempt)

    def _schedule_attempt(self, script: AgentScript, attempt) -> None:
        def fire() -> None:
            if attempt.after is not None:
                gate = self._settled.get(attempt.after.base)
                if gate is None:
                    # prerequisite pending: re-run when the base settles
                    self._waiters.setdefault(attempt.after.base, []).append(fire)
                    return
                if gate != attempt.after:
                    return  # settled against us: the task path is dead
            self.attempt(attempt.event)

        self.sim.schedule(attempt.time, fire)

    def run(
        self,
        scripts: Iterable[AgentScript] = (),
        settle: bool = True,
        verify: bool = True,
        max_rounds: int = 1000,
    ) -> ExecutionResult:
        for script in scripts:
            self.schedule_script(script)
        if self.faults is not None:
            self.faults.arm()
        for _site, monitor in self._monitors:
            monitor.evaluate()
        self.sim.run()
        if settle:
            self._drain(max_rounds)
        if self.timeseries is not None:
            # closing sample so the series end at the final state
            self._sample(self.sim.now)
        self._finalize(verify)
        return self.result

    def _drain(self, max_rounds: int) -> None:
        """Alternate escalation and settlement until the trace is
        maximal or neither makes progress."""
        for _ in range(max_rounds):
            if self._sweep_orphan_freezes():
                self.sim.run()
            self._escalation_rounds(max_rounds)
            if not self._settle_one():
                return
        self.result.violations.append(
            Violation("settlement", "settlement did not converge")
        )

    def _sweep_orphan_freezes(self) -> bool:
        """Void freezes that no live round can ever release.

        At quiescence no message is in flight, so a freeze is released
        only by its requester's round concluding -- but the certificate
        (or the release) can be lost for good: the coordinator's reply
        dies with its site's sender session when that site crashes, or
        retransmission gives up.  The requester then never learns it
        holds the freeze, and the base stays locked forever.  A freeze
        is provably orphaned when its requester has no active round
        with the recorded id that still involves the base; sweeping
        those is safe exactly because nothing is in flight that could
        still release them.  Returns True when anything was released.
        """
        released = False
        for base in sorted(self._frozen, key=Event.sort_key):

            def orphaned(holder: tuple[Event, int], base=base) -> bool:
                requester, round_id = holder
                actor = self.actors.get(requester)
                if actor is None and self.gateway is not None:
                    # the requester may live on a peer shard: its
                    # round state is just as consultable there
                    actor = self.gateway.find_actor(requester)
                if actor is None:
                    return True
                if not actor.round_active or actor.round_id != round_id:
                    return True
                return base not in (actor.round_holds | actor.round_awaiting)

            victims = {
                h for h in self._frozen.get(base, ()) if orphaned(h)
            }
            if victims:
                released = True
                self.metrics.inc(
                    "orphan_freezes_released", len(victims),
                    site=self.site_of(base),
                )
                self._release_holds(base, lambda h: h in victims)
        return released

    def _escalation_rounds(self, max_rounds: int) -> None:
        """At quiescence, let parked actors demand promises (which may
        trigger idle triggerable events) before anything is settled
        negatively.  One cube of one actor per round, so cheap
        alternatives resolve before anything gets triggered; any
        progress restarts the scan."""
        if not self.policy.escalation:
            return
        for _ in range(max_rounds):
            parked = [
                a for a in sorted(
                    self.actors.values(), key=lambda a: a.event.sort_key()
                )
                if a.status is ActorStatus.PENDING
                and not (
                    self.faults is not None and self.faults.is_down(a.site)
                )
            ]
            before = len(self.result.entries)
            # every parked actor demands one further cube; batching
            # keeps independent workflow instances parallel
            issued = False
            for actor in parked:
                if actor.escalate():
                    issued = True
                self._rewatch(actor)
            if not issued:
                return
            self.sim.run()
            if len(self.result.entries) == before and not issued:
                return

    def _settle_one(self) -> bool:
        """Attempt complements for a batch of unsettled bases; True if
        work remains for another round.

        All currently-eligible bases are settled in one batch so that
        independent workflow instances wind down in parallel; a base
        whose complement makes no progress is excluded from future
        batches until something else moves."""
        batch = []
        while True:
            base = self._next_settlement()
            if base is None or base in batch:
                break
            batch.append(base)
            self._no_progress_bases.add(base)  # provisional; cleared on progress
        if not batch:
            return False
        settled_before = set(self._settled)
        for base in batch:
            comp = base.complement
            if self.actors.get(comp) is not None:
                self.attempt(comp)
        self.sim.run()
        if set(self._settled) - settled_before:
            # progress may revive earlier stuck bases: only the batch
            # members that still failed stay excluded
            self._no_progress_bases = {
                b for b in batch if b not in self._settled
            }
        return True

    def _next_settlement(self) -> Event | None:
        """The smallest unsettled base eligible for complement settlement.

        A parked positive attempt does not block settlement: at
        quiescence no further message will arrive to unpark it, so the
        base must be resolved by its complement (which may itself park,
        in which case the base is recorded as making no progress)."""
        for base in sorted(self._all_bases(), key=Event.sort_key):
            if base in self._settled:
                continue
            if base in self._no_progress_bases:
                continue
            if not self.attributes(base).auto_complement:
                continue
            if self.faults is not None and self.faults.is_down(
                self.site_of(base)
            ):
                continue  # a permanently-failed site cannot settle
            return base
        return None

    def _finalize(self, verify: bool) -> None:
        self.result.makespan = self.sim.now
        self.result.messages = self.network.stats.messages
        self.result.messages_by_kind = dict(self.network.stats.by_kind)
        self.result.max_site_load = self.network.max_site_load()
        self.result.unsettled = [
            b for b in sorted(self._all_bases(), key=Event.sort_key)
            if b not in self._settled
        ]
        for actor in self.actors.values():
            if actor.granted_to and actor.status is not ActorStatus.OCCURRED:
                self.result.violations.append(
                    Violation(
                        "promise",
                        f"{actor.event!r} promised occurrence but never occurred",
                    )
                )
        if verify:
            # local dependencies always; a cross dependency only when
            # every base it mentions settles here -- spanning ones are
            # verified by the group engine on the merged timeline,
            # where both sides' entries exist
            deps = list(self.dependencies)
            deps.extend(
                dep
                for dep in self.cross_dependencies
                if all(self._owns(b) for b in dep.bases())
            )
            self.result.verify(deps)

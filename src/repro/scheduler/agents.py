"""Task agents and significant-event skeletons (paper Section 2, Figure 1).

An *agent* embodies a coarse description of its task: only the states
and transitions significant for coordination.  It interfaces the task
with the scheduling system -- requesting permission for controllable
events, reporting uncontrollable ones, and executing events the
scheduler triggers.  :class:`TaskSkeleton` captures the coarse state
machine; :class:`AgentScript` captures *when* the underlying task
attempts its transitions in a simulated run.

Figure 1's two standard agents are provided as factories:

* ``TaskSkeleton.typical_application`` -- start, then finish;
* ``TaskSkeleton.rda_transaction`` -- start, then commit or abort
  (abort being the classic nonrejectable event).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.symbols import Event


class TaskSkeleton:
    """A coarse task state machine over significant events.

    States are strings; each transition is labelled by the event whose
    occurrence takes it.  The skeleton validates that a sequence of
    significant events is one the task could actually produce -- the
    conformance check behind the Figure 1 bench.
    """

    def __init__(
        self,
        name: str,
        initial: str,
        transitions: dict[tuple[str, Event], str],
        terminal: frozenset[str],
    ):
        self.name = name
        self.initial = initial
        self.transitions = dict(transitions)
        self.terminal = frozenset(terminal)

    @staticmethod
    def typical_application(name: str) -> "TaskSkeleton":
        """Figure 1's "Typical Application": start -> executing -> done."""
        start = Event(f"s_{name}")
        finish = Event(f"f_{name}")
        return TaskSkeleton(
            name,
            "initial",
            {
                ("initial", start): "executing",
                ("executing", finish): "done",
            },
            frozenset({"done"}),
        )

    @staticmethod
    def rda_transaction(name: str) -> "TaskSkeleton":
        """Figure 1's "RDA Transaction": start, then commit or abort."""
        start = Event(f"s_{name}")
        commit = Event(f"c_{name}")
        abort = Event(f"a_{name}")
        return TaskSkeleton(
            name,
            "initial",
            {
                ("initial", start): "active",
                ("active", commit): "committed",
                ("active", abort): "aborted",
            },
            frozenset({"committed", "aborted"}),
        )

    def events(self) -> frozenset[Event]:
        return frozenset(ev for (_, ev) in self.transitions)

    def step(self, state: str, event: Event) -> str | None:
        """The state after ``event`` from ``state``; None if not allowed."""
        return self.transitions.get((state, event))

    def accepts(self, events: list[Event]) -> bool:
        """Whether the event sequence is a run of the skeleton that may
        stop anywhere (tasks can be mid-flight when observed)."""
        state = self.initial
        for event in events:
            nxt = self.step(state, event)
            if nxt is None:
                return False
            state = nxt
        return True

    def run_to_terminal(self, events: list[Event]) -> bool:
        """Like :meth:`accepts` but the run must end in a terminal state."""
        state = self.initial
        for event in events:
            nxt = self.step(state, event)
            if nxt is None:
                return False
            state = nxt
        return state in self.terminal


@dataclass(frozen=True)
class ScriptedAttempt:
    """One scripted task transition: attempt ``event`` at ``time``.

    ``after`` optionally names an event that must have occurred first
    (the task's own control flow: a transaction only tries to commit
    once it has started)."""

    time: float
    event: Event
    after: Event | None = None


@dataclass
class AgentScript:
    """What one task agent does during a simulated run.

    Attributes
    ----------
    site:
        The network site hosting the agent (and its events' actors in
        the distributed scheduler -- "typically placed close to its
        task").
    attempts:
        The transitions the underlying task spontaneously attempts.
    """

    site: str
    attempts: list[ScriptedAttempt] = field(default_factory=list)

    def events(self) -> frozenset[Event]:
        return frozenset(a.event for a in self.attempts)

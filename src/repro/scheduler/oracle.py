"""Post-hoc execution validation: the Definition 4 oracle.

A scheduler's realized trace can be audited offline against the
specification, independently of the machinery that produced it:

* :func:`validate_trace` -- the end-result check (every dependency
  satisfied, trace maximal);
* :func:`validate_generation` -- the stronger point-by-point check of
  Definition 4: at the index each event occurred, its synthesized
  guard held.  By Theorem 6 this is equivalent to satisfaction when
  guards are taken over *all* dependencies; with mentioned-only guards
  (what the distributed actors enforce) it additionally certifies that
  no actor fired against its own guard.

Used by the test suite as an independent oracle over every scheduler's
runs, and handy when debugging new scheduling policies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algebra.expressions import Expr
from repro.algebra.symbols import Event
from repro.algebra.traces import Trace, satisfies
from repro.scheduler.events import ExecutionResult
from repro.temporal.guards import workflow_guards


@dataclass
class AuditFinding:
    """One problem the oracle found."""

    kind: str
    detail: str


@dataclass
class AuditReport:
    findings: list[AuditFinding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def add(self, kind: str, detail: str) -> None:
        self.findings.append(AuditFinding(kind, detail))


def validate_trace(
    trace: Trace,
    dependencies: list[Expr],
    require_maximal: bool = True,
) -> AuditReport:
    """End-result audit: satisfaction and maximality."""
    report = AuditReport()
    for dep in dependencies:
        if not satisfies(trace, dep):
            report.add("dependency", f"{trace!r} violates {dep!r}")
    if require_maximal:
        bases: set[Event] = set()
        for dep in dependencies:
            bases |= dep.bases()
        present = {e.base for e in trace}
        for base in sorted(bases - present, key=Event.sort_key):
            report.add("maximality", f"base {base!r} never settled")
    return report


def validate_generation(
    trace: Trace,
    dependencies: list[Expr],
    mentioned_only: bool = True,
) -> AuditReport:
    """Definition 4 audit: each event's guard held when it occurred.

    Requires a maximal trace (guards are interpreted over maximal
    traces); combine with :func:`validate_trace` for the full story.
    """
    report = AuditReport()
    table = workflow_guards(dependencies, mentioned_only=mentioned_only)
    for index, event in enumerate(trace.events):
        event_guard = table.get(event)
        if event_guard is None:
            continue  # event foreign to the specification
        if not event_guard.holds_at(trace, index):
            report.add(
                "guard",
                f"{event!r} occurred at index {index} while its guard "
                f"{event_guard!r} was false",
            )
    return report


def audit_result(
    result: ExecutionResult,
    dependencies: list[Expr],
    mentioned_only: bool = True,
) -> AuditReport:
    """Full audit of a scheduler run: end result + generation +
    consistency of the result's own bookkeeping."""
    report = validate_trace(result.trace, dependencies)
    generation = validate_generation(
        result.trace, dependencies, mentioned_only=mentioned_only
    )
    report.findings.extend(generation.findings)
    if result.ok and report.findings:
        report.add(
            "bookkeeping",
            "result claims ok=True but the audit found problems",
        )
    seen: set[Event] = set()
    for entry in result.entries:
        if entry.event.base in seen:
            report.add(
                "bookkeeping", f"base {entry.event.base!r} settled twice"
            )
        seen.add(entry.event.base)
        if entry.time < entry.attempted_at:
            report.add(
                "bookkeeping",
                f"{entry.event!r} occurred before it was attempted",
            )
    return report

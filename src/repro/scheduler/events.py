"""Event attributes and execution results.

Section 3.3 distinguishes how the scheduler may act on an event: it
*accepts* events requested by task agents, *triggers* events marked
triggerable, and must swallow *nonrejectable* events (like ``abort``)
no matter what.  :class:`EventAttributes` records those properties per
base event; :class:`ExecutionResult` is the common outcome type all
three schedulers produce, so the benchmarks can compare them on equal
terms.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.algebra.expressions import Expr
from repro.algebra.symbols import Event
from repro.algebra.traces import Trace, satisfies


class AttemptOutcome(enum.Enum):
    """What happened to one attempt when it reached its decision point."""

    ACCEPTED = "accepted"
    PARKED = "parked"
    REJECTED = "rejected"
    FORCED = "forced"  # nonrejectable event accepted regardless of guard


@dataclass(frozen=True)
class EventAttributes:
    """Scheduling-relevant properties of a base event (Section 3.3).

    Attributes
    ----------
    triggerable:
        The scheduler may cause the event on its own accord (e.g. the
        ``start`` of a compensating task).
    rejectable:
        The scheduler may refuse the event.  ``abort`` events are
        typically nonrejectable: the component system will do them
        whether permitted or not.
    auto_complement:
        When the positive event is rejected permanently or the run
        quiesces without it, its complement is attempted automatically
        (the task abandons the transition), keeping traces maximal.
    guaranteed:
        The task agent vouches that the event will eventually be
        attempted (e.g. a task in its critical section will exit).
        Its actor may then grant ``<>`` promises before the attempt
        arrives -- Section 4's condition "(c) what should be
        guaranteed to happen eventually".
    delayable:
        The event may be parked awaiting other occurrences (the
        default).  Non-delayable events (Section 2's "events that ...
        cannot be delayed", e.g. a timeout firing) get an immediate
        verdict: if the guard is not certainly true at attempt time,
        the attempt is rejected outright.
    """

    triggerable: bool = False
    rejectable: bool = True
    auto_complement: bool = True
    guaranteed: bool = False
    delayable: bool = True


@dataclass(frozen=True)
class SchedulerPolicy:
    """Toggles for the distributed scheduler's protocol machinery.

    The defaults are the full protocol; the ablation benches turn
    pieces off to measure what each one buys (DESIGN.md's design-
    choice index).

    Attributes
    ----------
    promise_chaining:
        A promise grantee secures its own eventuality needs first
        (chained requests, cycle detection).  Off = grant optimistically
        whenever the guard is still possible -- cheaper, but promises
        can be broken (audited by the promise-violation counter).
    lazy_triggering:
        Idle triggerable events are caused only by requirement
        monitors or demand escalation at quiescence.  Off = any
        promise request to an idle triggerable event triggers it
        immediately -- faster, but alternatives get exercised
        needlessly (compensations may run on success paths).
    certificates:
        The not-yet agreement protocol for ``!f`` guards.  Off =
        such guards wait until the base settles -- always safe, but
        serializes events the paper lets run concurrently.
    escalation:
        Demand rounds at quiescence.  Off = parked events with only
        lazy alternatives stay parked until settlement.
    """

    promise_chaining: bool = True
    lazy_triggering: bool = True
    certificates: bool = True
    escalation: bool = True


@dataclass(frozen=True)
class Violation:
    """A correctness violation detected during or after a run."""

    kind: str
    detail: str


@dataclass
class TraceEntry:
    """One settled event in a run, with its decision telemetry."""

    event: Event
    time: float
    attempted_at: float
    outcome: AttemptOutcome

    @property
    def decision_latency(self) -> float:
        return self.time - self.attempted_at


@dataclass
class ExecutionResult:
    """The outcome of one scheduled run, common to all schedulers."""

    entries: list[TraceEntry] = field(default_factory=list)
    violations: list[Violation] = field(default_factory=list)
    makespan: float = 0.0
    messages: int = 0
    messages_by_kind: dict[str, int] = field(default_factory=dict)
    max_site_load: int = 0
    central_queue_wait: float = 0.0
    parked_total: int = 0
    promises_granted: int = 0
    not_yet_rounds: int = 0
    triggered: int = 0
    unsettled: list[Event] = field(default_factory=list)

    @property
    def trace(self) -> Trace:
        return Trace([entry.event for entry in self.entries])

    @property
    def ok(self) -> bool:
        return not self.violations and not self.unsettled

    def mean_decision_latency(self) -> float:
        if not self.entries:
            return 0.0
        return sum(e.decision_latency for e in self.entries) / len(self.entries)

    def verify(self, dependencies: list[Expr]) -> list[Violation]:
        """Check the realized trace against every stated dependency.

        Appends (and returns) violations for dependencies the trace
        fails -- the post-hoc form of Theorem 6's guarantee.
        """
        found = []
        for dep in dependencies:
            if not satisfies(self.trace, dep):
                found.append(
                    Violation("dependency", f"trace {self.trace!r} violates {dep!r}")
                )
        self.violations.extend(found)
        return found

"""Experiment X13: parametrized mutual exclusion across looping tasks.

Example 13 formalizes mutual exclusion over event *types* with
universally quantified instance parameters; no assumption is made
about how often (or when) the tasks enter their critical sections.
The bench drives several loop iterations through the parametrized
admission engine and also runs the propositional instance end to end
on the distributed scheduler.
"""

from repro.algebra.symbols import Event
from repro.params.scheduler import ParamScheduler
from repro.scheduler import DistributedScheduler
from repro.workloads.scenarios import make_mutex_scenario

from benchmarks.helpers import run_scenario

PARAM_DEPS = [
    "b2[y] . b1[x] + ~e1[x] + ~b2[y] + e1[x] . b2[y]",
    "b1[x] . b2[y] + ~e2[y] + ~b1[x] + e2[y] . b1[x]",
    "~b1[x] + e1[x]",
    "~b2[y] + e2[y]",
    "~e1[x] + b1[x]",
    "~e2[y] + b2[y]",
    "~b1[x] + ~e1[x] + b1[x] . e1[x]",
    "~b2[y] + ~e2[y] + b2[y] . e2[y]",
]


def tok(name, i):
    return Event(name, params=(i,))


def test_bench_param_mutex_three_iterations(benchmark):
    def run():
        sched = ParamScheduler(PARAM_DEPS)
        decisions = []
        for i in range(3):
            decisions.append(sched.attempt(tok("b1", i)))   # enter t1
            decisions.append(sched.attempt(tok("b2", i)))   # refused
            decisions.append(sched.attempt(tok("e1", i)))   # exit t1
            decisions.append(sched.attempt(tok("b2", i)))   # now admitted
            decisions.append(sched.attempt(tok("e2", i)))   # exit t2
        return sched, decisions

    sched, decisions = benchmark(run)
    expected = [True, False, True, True, True] * 3
    assert decisions == expected
    assert len(sched.trace) == 12  # 4 admitted events x 3 iterations


def test_bench_param_mutex_admission_check(benchmark):
    """Time a single admission decision mid-run (the hot operation)."""
    sched = ParamScheduler(PARAM_DEPS)
    sched.attempt(tok("b1", 0))

    allowed = benchmark(lambda: sched.allowed(tok("b2", 0)))
    assert not allowed  # task 1 holds the critical section


def test_bench_propositional_mutex_distributed(benchmark):
    def run():
        return run_scenario(make_mutex_scenario("t1"), DistributedScheduler)

    result = benchmark(run)
    assert result.ok
    order = [en.event.name for en in result.entries]
    b1, e1 = order.index("b1"), order.index("e1")
    b2, e2 = order.index("b2"), order.index("e2")
    assert e1 < b2 or e2 < b1  # critical sections never overlap


def test_bench_distributed_param_mutex(benchmark):
    """Section 5.2 end to end: parametrized mutual exclusion on the
    *distributed* runtime, instances materializing per token."""
    from repro.params.distributed import DistributedParamRunner
    from repro.scheduler.events import EventAttributes

    attrs = {
        "e1": EventAttributes(guaranteed=True),
        "e2": EventAttributes(guaranteed=True),
    }

    def run():
        runner = DistributedParamRunner(PARAM_DEPS, attributes=attrs)
        for i in range(2):
            runner.attempt(tok("b1", i))
            runner.attempt(tok("e1", i))
            runner.attempt(tok("b2", i))
            runner.attempt(tok("e2", i))
        return runner.finish()

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.ok, result.violations
    positive = [e for e in result.trace.events if not e.negated]
    assert len(positive) == 8

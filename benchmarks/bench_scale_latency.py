"""Experiment SC4: sensitivity to network latency.

Section 2 places each actor "close to its task": local attempts decide
locally, and only cross-event constraints pay network costs.  The
centralized scheduler pays a round trip on *every* attempt.  Sweeping
the link latency shows distributed decision latency flat for
unconstrained events and the centralized one growing ~2x latency per
decision.
"""

import random

import pytest

from repro.scheduler import CentralizedScheduler, DistributedScheduler
from repro.sim.network import ConstantLatency

from benchmarks.helpers import merged_travel_instances


def _run(scheduler_cls, latency, **kwargs):
    workflow, scripts = merged_travel_instances(3)
    sched = scheduler_cls(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=ConstantLatency(latency),
        rng=random.Random(5),
        **kwargs,
    )
    result = sched.run(scripts)
    assert result.ok, result.violations
    return result


@pytest.mark.parametrize("latency", [0.5, 2.0, 8.0])
def test_bench_distributed_latency(benchmark, latency):
    result = benchmark.pedantic(
        lambda: _run(DistributedScheduler, latency), rounds=3, iterations=1
    )
    assert result.ok


@pytest.mark.parametrize("latency", [0.5, 2.0, 8.0])
def test_bench_centralized_latency(benchmark, latency):
    result = benchmark.pedantic(
        lambda: _run(CentralizedScheduler, latency), rounds=3, iterations=1
    )
    assert result.ok


def test_bench_latency_shape(benchmark):
    """Makespans: both grow with latency, the centralized one faster
    (every decision is a round trip through the center)."""

    def sweep():
        rows = []
        for latency in (0.5, 2.0, 8.0):
            dist = _run(DistributedScheduler, latency)
            cent = _run(CentralizedScheduler, latency)
            rows.append(
                {
                    "latency": latency,
                    "dist_makespan": dist.makespan,
                    "cent_makespan": cent.makespan,
                    "dist_mean_decision": dist.mean_decision_latency(),
                    "cent_mean_decision": cent.mean_decision_latency(),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_latency = {row["latency"]: row for row in rows}
    # both makespans grow with latency
    assert by_latency[8.0]["cent_makespan"] > by_latency[0.5]["cent_makespan"]
    assert by_latency[8.0]["dist_makespan"] > by_latency[0.5]["dist_makespan"]
    # every centralized decision pays at least a round trip; the mean
    # is bounded below by it once parked waits are included
    assert by_latency[8.0]["cent_mean_decision"] >= 8.0
    # the distributed protocol pays *more* hops per constrained event
    # (promises, certificates) -- latency hurts it more per decision;
    # its win is the bottleneck-free scaling measured in SC1, not raw
    # hop count.  Record the honest ratio:
    assert (
        by_latency[8.0]["dist_mean_decision"]
        > by_latency[8.0]["cent_mean_decision"]
    )
    # growth in latency is ~linear for both (no queueing pathology)
    assert by_latency[8.0]["dist_makespan"] <= 20 * by_latency[0.5]["dist_makespan"]
    assert by_latency[8.0]["cent_makespan"] <= 20 * by_latency[0.5]["cent_makespan"]

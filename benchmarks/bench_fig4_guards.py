"""Experiment F4: regenerate Figure 4 / Example 9's guard computations.

All eight guards of Example 9 are synthesized from Definition 2 and
asserted verbatim against the paper's reductions, including the final
simplified forms ``G(D_<, e) = !f`` and ``G(D_<, f) = []e + <>~e``.
"""

from repro.algebra.expressions import TOP, ZERO
from repro.algebra.parser import parse
from repro.algebra.symbols import Event
from repro.temporal.cubes import FALSE_GUARD, TRUE_GUARD, literal
from repro.temporal.guards import guard, workflow_guards

from benchmarks.helpers import clear_symbolic_caches

E, F = Event("e"), Event("f")
D_PREC = parse("~e + ~f + e . f")
D_ARROW = parse("~e + f")


def test_bench_example9_guards(benchmark):
    def synthesize():
        clear_symbolic_caches()
        return {
            "G(T,e)": guard(TOP, E),
            "G(0,e)": guard(ZERO, E),
            "G(e,e)": guard(parse("e"), E),
            "G(~e,e)": guard(parse("~e"), E),
            "G(D<,~e)": guard(D_PREC, ~E),
            "G(D<,e)": guard(D_PREC, E),
            "G(D<,~f)": guard(D_PREC, ~F),
            "G(D<,f)": guard(D_PREC, F),
        }

    guards = benchmark(synthesize)
    assert guards["G(T,e)"] == TRUE_GUARD          # Example 9.1
    assert guards["G(0,e)"] == FALSE_GUARD         # Example 9.2
    assert guards["G(e,e)"] == TRUE_GUARD          # Example 9.3
    assert guards["G(~e,e)"] == FALSE_GUARD        # Example 9.4
    assert guards["G(D<,~e)"] == TRUE_GUARD        # Example 9.5
    assert guards["G(D<,e)"] == literal("notyet", F)  # Example 9.6
    assert guards["G(D<,~f)"] == TRUE_GUARD        # Example 9.7
    assert guards["G(D<,f)"] == (                  # Example 9.8
        literal("dia", ~E) | literal("box", E)
    )
    # the printed forms the paper derives
    assert repr(guards["G(D<,e)"]) == "!f"
    assert repr(guards["G(D<,f)"]) == "([]e + <>~e)"


def test_bench_example11_mutual_guards(benchmark):
    def synthesize():
        clear_symbolic_caches()
        return guard(D_ARROW, E), guard(parse("~f + e"), F)

    g_e, g_f = benchmark(synthesize)
    assert g_e == literal("dia", F)
    assert g_f == literal("dia", E)


def test_bench_workflow_guard_table(benchmark):
    """The per-event table for a workflow combining D_< and D_->."""

    def synthesize():
        clear_symbolic_caches()
        return workflow_guards([D_PREC, D_ARROW])

    table = benchmark(synthesize)
    # e needs f not-yet (from D_<) and f guaranteed (from D_->)
    assert table[E] == literal("notyet", F) & literal("dia", F)
    assert table[~F] == literal("dia", ~E)

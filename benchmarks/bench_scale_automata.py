"""Experiment SC2: automata blow-up vs symbolic guard size.

Section 6 on the prior automata approach [2]: "It avoids generating
product automata, but the individual automata themselves can be quite
large."  We grow a family of dependencies (pairwise precedence over k
tasks, conjoined) and compare the residual-closure automaton's state
count against the synthesized guards' total cube/literal counts: the
automaton grows combinatorially with the alphabet while the symbolic
guards stay compact.
"""

import pytest

from repro.algebra.expressions import Conj
from repro.algebra.symbols import Event
from repro.scheduler.automata import DependencyAutomaton
from repro.temporal.guards import workflow_guards
from repro.workflows.primitives import klein_precedes

from benchmarks.helpers import clear_symbolic_caches


def staircase(k: int):
    """``t0 < t1 | t1 < t2 | ... `` as ONE conjoined dependency --
    the worst case for a single dependency automaton."""
    events = [Event(f"t{i}") for i in range(k)]
    return Conj.of(
        [klein_precedes(a, b) for a, b in zip(events, events[1:])]
    ), events


@pytest.mark.parametrize("k", [2, 3, 4])
def test_bench_automaton_states(benchmark, k):
    dep, _events = staircase(k)

    def build():
        clear_symbolic_caches()
        return DependencyAutomaton(dep)

    auto = benchmark.pedantic(build, rounds=3, iterations=1)
    assert auto.state_count >= 2


@pytest.mark.parametrize("k", [2, 3, 4])
def test_bench_guard_sizes(benchmark, k):
    dep, events = staircase(k)

    def build():
        clear_symbolic_caches()
        return workflow_guards([dep])

    table = benchmark.pedantic(build, rounds=3, iterations=1)
    assert all(not g.is_false for g in table.values())


def test_bench_blowup_shape(benchmark):
    """The centralized precompiled object vs the per-actor state.

    The automaton's transition table (the object the centralized
    scheduler of [2] must hold and consult at one site) grows
    super-linearly with the conjoined dependency's alphabet -- Figure
    2's 5 states over 4 letters become dozens of states over 8.  The
    event-centric compilation shards the same information: no single
    actor ever holds more than its own event's guard, a strictly and
    increasingly smaller object.  (Honest note, recorded in
    EXPERIMENTS.md: the *sum* of all guard sizes for densely conjoined
    dependencies is not small -- locality, not total size, is the
    win.)
    """

    def sweep():
        rows = []
        for k in (2, 3, 4):
            dep, events = staircase(k)
            clear_symbolic_caches()
            auto = DependencyAutomaton(dep)
            table = workflow_guards([dep])
            per_event_literals = max(g.literal_count() for g in table.values())
            rows.append(
                {
                    "k": k,
                    "automaton_states": auto.state_count,
                    "automaton_transitions": auto.transition_count,
                    "max_guard_literals": per_event_literals,
                    "total_guard_cubes": sum(
                        g.cube_count() for g in table.values()
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_k = {row["k"]: row for row in rows}
    # the automaton at least doubles with each extra task
    assert by_k[3]["automaton_states"] >= 2 * by_k[2]["automaton_states"]
    assert by_k[4]["automaton_states"] >= 2 * by_k[3]["automaton_states"]
    # the central table always exceeds any one actor's guard, and the
    # absolute gap widens with k (the locality claim)
    gaps = {
        k: by_k[k]["automaton_transitions"] - by_k[k]["max_guard_literals"]
        for k in (2, 3, 4)
    }
    for k in (2, 3, 4):
        assert (
            by_k[k]["automaton_transitions"] > by_k[k]["max_guard_literals"]
        )
    assert gaps[4] > gaps[3] > gaps[2]

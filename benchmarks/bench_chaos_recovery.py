"""Experiment: overhead of the reliable session layer and recovery.

Measures the travel-booking scenario on the distributed scheduler at
message-drop probabilities 0.0 / 0.1 / 0.3 (duplication matched to the
drop rate), with and without a mid-run site crash, and records:

* virtual makespan (how much wall time the *workflow* loses),
* message volume incl. acks and retransmissions (the fabric's cost),
* recovery latency after a crash (restart -> solicitation complete).

The assertions pin the qualitative claims recorded in EXPERIMENTS.md:
the session layer is invisible at drop=0 beyond ack traffic, and at
drop=0.3 with a crash the scenario still settles every base.
"""

import random

import pytest

from repro.scheduler import DistributedScheduler
from repro.sim import FaultPlan, SiteCrash
from repro.workloads.scenarios import make_travel_booking

DROPS = [0.0, 0.1, 0.3]


def _run(drop, plan, seed=0, reliable=True):
    scenario = make_travel_booking("success")
    sched = DistributedScheduler(
        scenario.workflow.dependencies,
        sites=scenario.workflow.sites,
        attributes=scenario.workflow.attributes,
        rng=random.Random(seed),
        drop_probability=drop,
        duplicate_probability=drop,
        reliable=reliable,
        fault_plan=plan,
    )
    result = sched.run(scenario.scripts, verify=False)
    return sched, scenario, result


@pytest.mark.parametrize("drop", DROPS)
def test_bench_session_layer_overhead(benchmark, drop):
    """Reliable run vs. the drop rate: cost in messages and makespan."""

    def run():
        return _run(drop, plan=None)

    sched, scenario, result = benchmark(run)
    assert not result.unsettled
    occurred = {en.event for en in result.entries}
    assert scenario.expect_occur <= occurred
    network = sched.metrics_report()["network"]
    if drop == 0.0:
        assert network["retransmits"] == 0
    else:
        assert network["dropped"] > 0  # the fabric really was lossy
    print(
        f"\n[chaos drop={drop:.1f}] makespan={result.makespan:.1f} "
        f"messages={network['messages']} acks={network['acks_sent']} "
        f"retransmits={network['retransmits']}"
    )


@pytest.mark.parametrize("drop", DROPS)
def test_bench_crash_recovery(benchmark, drop):
    """Same sweep with the airline site crashing mid-booking."""

    plan = FaultPlan.of([SiteCrash("airline", at=2.0, restart_at=7.0)])

    def run():
        return _run(drop, plan=plan)

    sched, scenario, result = benchmark(run)
    assert not result.unsettled
    occurred = {en.event for en in result.entries}
    assert scenario.expect_occur <= occurred
    report = sched.chaos_report()
    assert report.crashes == 1 and report.restarts == 1
    metrics = sched.metrics_report()
    assert metrics["faults"] == {"crashes": 1, "restarts": 1}
    # the network section is NetworkStats.as_dict(): one merged report
    assert metrics["network"]["messages"] == report.messages
    assert "recovery_latency" in metrics["histograms"]
    print(
        f"\n[chaos drop={drop:.1f} +crash] makespan={result.makespan:.1f} "
        f"messages={report.messages} retransmits={report.retransmits} "
        f"recovery={report.max_recovery_latency:.1f}"
    )


def test_bench_raw_vs_reliable_baseline(benchmark):
    """The layer's fault-free cost relative to the raw fabric."""

    def run():
        _, _, raw = _run(0.0, plan=None, reliable=False)
        sched, _, wrapped = _run(0.0, plan=None, reliable=True)
        return raw, wrapped, sched

    raw, wrapped, sched = benchmark(run)
    assert [en.event for en in raw.entries] == [
        en.event for en in wrapped.entries
    ]
    report = sched.chaos_report()
    # overhead is pure ack traffic: every inter-site payload acked once
    assert report.acks_sent > 0
    assert report.retransmits == 0

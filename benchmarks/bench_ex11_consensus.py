"""Experiment X11: Example 11's mutual-eventuality consensus.

``D_->`` and its transpose give ``e`` the guard ``<>f`` and ``f`` the
guard ``<>e``: neither can fire on announcements alone.  The promise
protocol lets one side issue a conditional promise the other uses to
proceed, discharging the first (Section 4.3).
"""

from repro.algebra.parser import parse
from repro.algebra.symbols import Event
from repro.scheduler import DistributedScheduler
from repro.scheduler.agents import AgentScript, ScriptedAttempt

E, F = Event("e"), Event("f")
DEPS = [parse("~e + f"), parse("~f + e")]


def _run_mutual():
    sched = DistributedScheduler(DEPS)
    return sched.run(
        [
            AgentScript("site_e", [ScriptedAttempt(0.0, E)]),
            AgentScript("site_f", [ScriptedAttempt(0.0, F)]),
        ]
    )


def test_bench_mutual_promises(benchmark):
    result = benchmark(_run_mutual)
    assert result.ok
    occurred = {en.event for en in result.entries}
    assert occurred == {E, F}
    assert result.promises_granted >= 1
    assert result.messages_by_kind.get("promise_request", 0) >= 1
    assert result.messages_by_kind.get("promise_grant", 0) >= 1


def test_bench_one_sided_consensus(benchmark):
    """Only e is ever attempted: no promise can be secured, so both
    events settle negatively (coupled all-or-nothing semantics)."""

    def run():
        sched = DistributedScheduler(DEPS)
        return sched.run([AgentScript("site_e", [ScriptedAttempt(0.0, E)])])

    result = benchmark(run)
    assert result.ok
    occurred = {en.event for en in result.entries}
    assert occurred == {~E, ~F}


def test_bench_promise_chain(benchmark):
    """A three-cycle of arrows: e -> f -> g -> e; attempting all three
    closes the consensus cycle through chained promise requests."""
    G = Event("g")
    deps = [parse("~e + f"), parse("~f + g"), parse("~g + e")]

    def run():
        sched = DistributedScheduler(deps)
        return sched.run(
            [
                AgentScript("se", [ScriptedAttempt(0.0, E)]),
                AgentScript("sf", [ScriptedAttempt(0.0, F)]),
                AgentScript("sg", [ScriptedAttempt(0.0, G)]),
            ]
        )

    result = benchmark(run)
    assert result.ok, result.violations
    occurred = {en.event for en in result.entries}
    assert occurred == {E, F, G}

"""Experiment F1: Figure 1's task agents, built and conformance-checked.

Figure 1 shows the coarse significant-event skeletons a task agent
exposes: a "Typical Application" (start/finish) and an "RDA
Transaction" (start, then commit or abort).  The bench builds both,
checks the travel scenario's realized traces against the RDA skeletons
task by task, and times the conformance run.
"""

from repro.algebra.symbols import Event
from repro.scheduler import DistributedScheduler
from repro.scheduler.agents import TaskSkeleton
from repro.workloads.scenarios import make_travel_booking

from benchmarks.helpers import run_scenario


def test_bench_skeleton_construction(benchmark):
    def build():
        return (
            TaskSkeleton.typical_application("app"),
            TaskSkeleton.rda_transaction("txn"),
        )

    app, txn = benchmark(build)
    assert app.events() == frozenset({Event("s_app"), Event("f_app")})
    assert txn.events() == frozenset(
        {Event("s_txn"), Event("c_txn"), Event("a_txn")}
    )


def test_bench_trace_conformance(benchmark):
    """The scheduler's realized traces respect each task's skeleton."""
    buy_skel = TaskSkeleton.rda_transaction("buy")
    result = run_scenario(make_travel_booking("success"), DistributedScheduler)
    # project the global trace onto the buy task's significant events,
    # mapping the complement of commit to the task's abort transition
    projected = []
    for entry in result.entries:
        ev = entry.event
        if ev == Event("s_buy"):
            projected.append(Event("s_buy"))
        elif ev == Event("c_buy"):
            projected.append(Event("c_buy"))
        elif ev == ~Event("c_buy"):
            projected.append(Event("a_buy"))

    checked = benchmark(lambda: buy_skel.run_to_terminal(projected))
    assert checked


def test_bench_failure_trace_is_abort_run(benchmark):
    buy_skel = TaskSkeleton.rda_transaction("buy")
    result = run_scenario(make_travel_booking("failure"), DistributedScheduler)
    projected = []
    for entry in result.entries:
        ev = entry.event
        if ev == Event("s_buy"):
            projected.append(Event("s_buy"))
        elif ev == Event("c_buy"):
            projected.append(Event("c_buy"))
        elif ev == ~Event("c_buy"):
            projected.append(Event("a_buy"))

    checked = benchmark(lambda: buy_skel.run_to_terminal(projected))
    assert checked
    assert Event("a_buy") in projected

"""Experiment X10: Example 10's execution by guard evaluation.

"If f is attempted first, its guard is not T, so it is parked.  Event
~e can occur right away when attempted.  When f is informed of this,
its guard reduces to T, and it is allowed to occur."
"""

from repro.algebra.parser import parse
from repro.algebra.symbols import Event
from repro.scheduler import DistributedScheduler
from repro.scheduler.agents import AgentScript, ScriptedAttempt

E, F = Event("e"), Event("f")
D_PREC = parse("~e + ~f + e . f")


def _run():
    sched = DistributedScheduler([D_PREC])
    script = AgentScript(
        "site", [ScriptedAttempt(0.0, F), ScriptedAttempt(5.0, ~E)]
    )
    return sched.run([script])


def test_bench_example10_run(benchmark):
    result = benchmark(_run)
    assert result.ok
    assert [en.event for en in result.entries] == [~E, F]
    # f was parked awaiting ~e's announcement
    assert result.parked_total >= 1
    f_entry = result.entries[-1]
    assert f_entry.attempted_at == 0.0
    assert f_entry.time >= 5.0  # enabled only after ~e occurred
    # the enabling flowed through an announce message
    assert result.messages_by_kind.get("announce", 0) >= 1


def test_bench_example10_immediate_path(benchmark):
    """The contrasting schedule: e first needs only a certificate."""

    def run():
        sched = DistributedScheduler([D_PREC])
        script = AgentScript(
            "site", [ScriptedAttempt(0.0, E), ScriptedAttempt(1.0, F)]
        )
        return sched.run([script])

    result = benchmark(run)
    assert result.ok
    assert [en.event for en in result.entries] == [E, F]
    assert result.not_yet_rounds >= 1

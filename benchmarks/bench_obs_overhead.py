"""Experiment OB1: cost of the observability layer.

Runs Example 13 (mutual exclusion) on the distributed scheduler three
ways -- tracing off (the ``NULL_TRACER`` default), tracing on, and
tracing on with timed metrics -- and pins two claims:

* **tracing is purely observational**: the traced run's virtual
  results (timeline, makespan, message count) are identical to the
  untraced run's, because tracing consumes no randomness and changes
  no decision;
* **tracing off is free**: the instrumentation behind the disabled
  tracer is one attribute read and a branch per hook, so the untraced
  wall time stays within noise of the pre-instrumentation baseline
  (asserted loosely here -- wall-clock ratios on shared CI boxes are
  fuzzy -- and recorded precisely in EXPERIMENTS.md).
"""

import random
import time

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.scheduler import DistributedScheduler
from repro.workloads.scenarios import make_mutex_scenario


def _run(tracer=None, timed=False, seed=5):
    scenario = make_mutex_scenario()
    metrics = MetricsRegistry(timed=timed) if timed else None
    sched = DistributedScheduler(
        scenario.workflow.dependencies,
        sites=scenario.workflow.sites,
        attributes=scenario.workflow.attributes,
        rng=random.Random(seed),
        tracer=tracer,
        metrics=metrics,
    )
    result = sched.run(scenario.scripts, verify=False)
    assert not result.unsettled
    return sched, result


def _timeline(result):
    return [
        (entry.event, entry.time, entry.attempted_at, entry.outcome)
        for entry in result.entries
    ]


def test_bench_tracing_off_is_default(benchmark):
    sched, result = benchmark(_run)
    assert sched.tracer.active is False
    assert sched.tracer.records == []


def test_bench_tracing_on(benchmark):
    def run():
        return _run(tracer=Tracer())

    sched, result = benchmark(run)
    assert sched.tracer.records
    print(f"\n[obs] traced mutex run: {len(sched.tracer.records)} records")


def test_bench_traced_run_is_bit_identical():
    _, plain = _run()
    traced_sched, traced = _run(tracer=Tracer())
    assert _timeline(plain) == _timeline(traced)
    assert plain.makespan == traced.makespan
    assert plain.messages == traced.messages


def test_bench_overhead_ratio():
    """Wall-clock ratio of traced / untraced, measured directly.

    The generous bound (4x) exists to catch accidental O(n^2) record
    handling or tracing work leaking into the disabled path, not to
    measure the true cost -- that is the benchmark fixtures' job.
    """
    rounds = 5
    _run()  # warm-up: imports, guard compilation caches

    def clock(**kwargs):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _run(**kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    off = clock()
    on = clock(tracer=Tracer())
    timed = clock(tracer=Tracer(), timed=True)
    print(
        f"\n[obs] mutex wall: off={off * 1e3:.2f}ms on={on * 1e3:.2f}ms "
        f"timed={timed * 1e3:.2f}ms ratio={on / off:.2f}"
    )
    assert on < off * 4.0, (off, on)
    assert timed < off * 5.0, (off, timed)

"""Experiment OB1: cost of the observability layer.

Runs Example 13 (mutual exclusion) on the distributed scheduler three
ways -- tracing off (the ``NULL_TRACER`` default), tracing on, and
tracing on with timed metrics -- and pins two claims:

* **tracing is purely observational**: the traced run's virtual
  results (timeline, makespan, message count) are identical to the
  untraced run's, because tracing consumes no randomness and changes
  no decision;
* **tracing off is free**: the instrumentation behind the disabled
  tracer is one attribute read and a branch per hook, so the untraced
  wall time stays within noise of the pre-instrumentation baseline
  (asserted loosely here -- wall-clock ratios on shared CI boxes are
  fuzzy -- and recorded precisely in EXPERIMENTS.md).
"""

import random
import time

import pytest

from repro.obs import MetricsRegistry, Tracer
from repro.scheduler import DistributedScheduler
from repro.workloads.scenarios import make_mutex_scenario


def _run(tracer=None, timed=False, seed=5):
    scenario = make_mutex_scenario()
    metrics = MetricsRegistry(timed=timed) if timed else None
    sched = DistributedScheduler(
        scenario.workflow.dependencies,
        sites=scenario.workflow.sites,
        attributes=scenario.workflow.attributes,
        rng=random.Random(seed),
        tracer=tracer,
        metrics=metrics,
    )
    result = sched.run(scenario.scripts, verify=False)
    assert not result.unsettled
    return sched, result


def _timeline(result):
    return [
        (entry.event, entry.time, entry.attempted_at, entry.outcome)
        for entry in result.entries
    ]


def test_bench_tracing_off_is_default(benchmark):
    sched, result = benchmark(_run)
    assert sched.tracer.active is False
    assert sched.tracer.records == []


def test_bench_tracing_on(benchmark):
    def run():
        return _run(tracer=Tracer())

    sched, result = benchmark(run)
    assert sched.tracer.records
    print(f"\n[obs] traced mutex run: {len(sched.tracer.records)} records")


def test_bench_traced_run_is_bit_identical():
    _, plain = _run()
    traced_sched, traced = _run(tracer=Tracer())
    assert _timeline(plain) == _timeline(traced)
    assert plain.makespan == traced.makespan
    assert plain.messages == traced.messages


def test_bench_overhead_ratio():
    """Wall-clock ratio of traced / untraced, measured directly.

    The generous bound (4x) exists to catch accidental O(n^2) record
    handling or tracing work leaking into the disabled path, not to
    measure the true cost -- that is the benchmark fixtures' job.
    """
    rounds = 5
    _run()  # warm-up: imports, guard compilation caches

    def clock(**kwargs):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _run(**kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    off = clock()
    on = clock(tracer=Tracer())
    timed = clock(tracer=Tracer(), timed=True)
    print(
        f"\n[obs] mutex wall: off={off * 1e3:.2f}ms on={on * 1e3:.2f}ms "
        f"timed={timed * 1e3:.2f}ms ratio={on / off:.2f}"
    )
    assert on < off * 4.0, (off, on)
    assert timed < off * 5.0, (off, timed)


# ----------------------------------------------------------------------
# Experiment OB2: cost of decision provenance.
#
# The provenance log records one small dict per knowledge refinement.
# Off (the default unless a tracer is active) it is the NULL_PROVENANCE
# singleton -- one attribute read per refinement; on, the run stays
# bit-identical because recording consumes no randomness and changes
# no decision.


def _run_provenance(provenance=None, seed=5):
    scenario = make_mutex_scenario()
    sched = DistributedScheduler(
        scenario.workflow.dependencies,
        sites=scenario.workflow.sites,
        attributes=scenario.workflow.attributes,
        rng=random.Random(seed),
        provenance=provenance,
    )
    result = sched.run(scenario.scripts, verify=False)
    assert not result.unsettled
    return sched, result


def test_bench_provenance_on(benchmark):
    def run():
        return _run_provenance(provenance=True)

    sched, _result = benchmark(run)
    facts = sum(
        len(entries) for entries in sched.provenance._entries.values()
    )
    assert facts > 0
    print(f"\n[obs] provenance mutex run: {facts} recorded facts")


def test_bench_provenance_run_is_bit_identical():
    _, off = _run_provenance()
    on_sched, on = _run_provenance(provenance=True)
    assert _timeline(off) == _timeline(on)
    assert off.makespan == on.makespan
    assert off.messages == on.messages
    assert type(on_sched.provenance).__name__ == "ProvenanceLog"


def test_bench_provenance_overhead_ratio():
    """OB2's loose CI guard; EXPERIMENTS.md records the precise ratio."""
    rounds = 5
    _run_provenance()  # warm-up

    def clock(**kwargs):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _run_provenance(**kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    off = clock()
    on = clock(provenance=True)
    print(
        f"\n[obs] provenance wall: off={off * 1e3:.2f}ms "
        f"on={on * 1e3:.2f}ms ratio={on / off:.2f}"
    )
    assert on < off * 4.0, (off, on)


# ----------------------------------------------------------------------
# Experiment SN1: snapshots under faults.
#
# Periodic marker-protocol snapshots ride the same (lossy, crashing)
# fabric as the workload.  The claims: the workload's decisions are
# untouched (identical settlement timeline), marker traffic is the
# only added cost, and completed snapshots pass the consistency
# checker even when cut mid-chaos.


def _run_snapshots(every=None, drop=0.0, plan=None, seed=5, tracer=None):
    scenario = make_mutex_scenario()
    sched = DistributedScheduler(
        scenario.workflow.dependencies,
        sites=scenario.workflow.sites,
        attributes=scenario.workflow.attributes,
        rng=random.Random(seed),
        drop_probability=drop,
        reliable=drop > 0 or plan is not None,
        fault_plan=plan,
        tracer=tracer,
    )
    if every is not None:
        sched.schedule_snapshots(every)
    result = sched.run(scenario.scripts, verify=False)
    return sched, result


def test_bench_snapshots_leave_workload_untouched():
    _, plain = _run_snapshots()
    sched, snapped = _run_snapshots(every=2.0)
    assert _timeline(plain) == _timeline(snapped)
    markers = sched.network.stats.by_kind.get("snapshot_marker", 0)
    assert snapped.messages == plain.messages + markers
    assert all(s.complete for s in sched.snapshots.snapshots)


def test_bench_snapshots_under_faults(benchmark):
    from repro.obs import check_snapshot
    from repro.sim import FaultPlan, SiteCrash

    def run():
        plan = FaultPlan.of([SiteCrash("task1", at=2.0, restart_at=7.0)])
        return _run_snapshots(
            every=3.0, drop=0.2, plan=plan, tracer=Tracer()
        )

    sched, _result = benchmark(run)
    snaps = sched.snapshots.snapshots
    completed = [s for s in snaps if s.complete]
    assert completed, "chaos starved every snapshot"
    for snap in completed:
        assert check_snapshot(snap, sched.tracer.records) == []
    markers = sched.network.stats.by_kind.get("snapshot_marker", 0)
    share = markers / max(1, sched.network.stats.messages)
    print(
        f"\n[obs] SN1: {len(completed)}/{len(snaps)} snapshots complete, "
        f"{markers} markers ({share:.1%} of fabric traffic)"
    )


# ----------------------------------------------------------------------
# Experiment OB3: cost of the span profiler on SC1.
#
# The profiler wraps the hot scheduler phases (synthesis, delivery,
# guard evaluation, watch wake-ups, cube ops) in explicit spans.  Off
# -- the NULL_PROFILER default -- each instrumented site costs one
# attribute read and a branch; on, each span costs two perf_counter
# calls.  Both claims are pinned on SC1 (merged travel instances, the
# scalability workload of Section 6): the profiled run stays
# bit-identical, and the enabled profiler sits well under the loose
# wall bound (measured <5%; EXPERIMENTS.md records the ratio).


def _run_profiled(profiler=None, sample_every=None, count=6, seed=42):
    from benchmarks.helpers import merged_travel_instances
    from repro.sim.network import ConstantLatency

    workflow, scripts = merged_travel_instances(count)
    sched = DistributedScheduler(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=ConstantLatency(1.0),
        rng=random.Random(seed),
        profiler=profiler,
        sample_every=sample_every,
    )
    result = sched.run(scripts, verify=False)
    assert not result.unsettled
    return sched, result


def test_bench_profiler_on(benchmark):
    from repro.obs.profile import Profiler

    def run():
        return _run_profiled(profiler=Profiler(), sample_every=1.0)

    sched, _result = benchmark(run)
    report = sched.profiler.report()
    assert "synthesis" in report["phases"]
    assert "delivery" in report["phases"]
    spans = sum(node["calls"] for node in report["phases"].values())
    print(
        f"\n[obs] profiled SC1 run: {spans} spans, "
        f"{len(report['phases'])} distinct phase paths"
    )


def test_bench_profiled_run_is_bit_identical():
    from repro.obs.profile import Profiler

    _, plain = _run_profiled()
    _, profiled = _run_profiled(profiler=Profiler(), sample_every=1.0)
    assert _timeline(plain) == _timeline(profiled)
    assert plain.makespan == profiled.makespan
    assert plain.messages == profiled.messages


def test_bench_profiler_overhead_ratio():
    """OB3's loose CI guard; EXPERIMENTS.md records the precise ratio."""
    from repro.obs.profile import Profiler

    rounds = 5
    _run_profiled()  # warm-up: imports, guard compilation caches

    def clock(**kwargs):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _run_profiled(**kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    off = clock()
    on = clock(profiler=Profiler())
    sampled = clock(profiler=Profiler(), sample_every=1.0)
    print(
        f"\n[obs] SC1 wall: off={off * 1e3:.2f}ms on={on * 1e3:.2f}ms "
        f"sampled={sampled * 1e3:.2f}ms ratio={on / off:.2f}"
    )
    assert on < off * 4.0, (off, on)
    assert sampled < off * 5.0, (off, sampled)


# ----------------------------------------------------------------------
# Experiment OB4: flight-recorder tracing and differ throughput on SC1.
#
# The flight recorder keeps a bounded ring of trace records instead of
# the full stream, so its memory is constant in run length; its CPU
# cost sits between tracing-off and full tracing (every record is
# still built, but eviction replaces unbounded list growth).  The
# second half times the causal differ on a same-seed pair of full SC1
# traces -- the common "is this run identical to the baseline?" query
# of the regression registry.


def _run_sc1(tracer=None, count=6, seed=42):
    from benchmarks.helpers import merged_travel_instances
    from repro.sim.network import ConstantLatency

    workflow, scripts = merged_travel_instances(count)
    sched = DistributedScheduler(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=ConstantLatency(1.0),
        rng=random.Random(seed),
        tracer=tracer,
    )
    result = sched.run(scripts, verify=False)
    assert not result.unsettled
    return sched, result


def test_bench_flight_recorder_on_sc1(benchmark):
    from repro.obs.recorder import FlightRecorder

    def run():
        return _run_sc1(tracer=FlightRecorder(ring=256))

    sched, _result = benchmark(run)
    stats = sched.tracer.recorder_stats()
    assert stats["retained"] == 256
    assert stats["dropped_total"] > 0
    print(
        f"\n[obs] OB4 flight-recorded SC1 run: ring=256 retained "
        f"{stats['retained']}, dropped {stats['dropped_total']}"
    )


def test_bench_flight_recorded_run_is_bit_identical():
    from repro.obs.recorder import FlightRecorder

    _, plain = _run_sc1()
    _, recorded = _run_sc1(tracer=FlightRecorder(ring=128))
    assert _timeline(plain) == _timeline(recorded)
    assert plain.makespan == recorded.makespan
    assert plain.messages == recorded.messages


def test_bench_flight_recorder_memory_is_constant():
    from repro.obs.recorder import FlightRecorder

    small = FlightRecorder(ring=64)
    _run_sc1(tracer=small, count=4)
    grown = FlightRecorder(ring=64)
    _run_sc1(tracer=grown, count=8)
    # doubling the workload doubles the drops, not the footprint
    assert len(small.records) <= 64 + len(
        [r for r in small.records if r["cat"] == "fault"]
    )
    assert len(grown.records) <= 64 + len(
        [r for r in grown.records if r["cat"] == "fault"]
    )
    assert (
        grown.recorder_stats()["dropped_total"]
        > small.recorder_stats()["dropped_total"]
    )


def test_bench_differ_on_sc1_pair(benchmark):
    from repro.obs.diff import diff_traces

    tracer_a, tracer_b = Tracer(), Tracer()
    _run_sc1(tracer=tracer_a)
    _run_sc1(tracer=tracer_b)
    records_a = list(tracer_a.records)
    records_b = list(tracer_b.records)

    diff = benchmark(lambda: diff_traces(records_a, records_b))
    assert diff.identical  # same seed: elapsed-only differences
    print(
        f"\n[obs] OB4 differ: {diff.records_a}+{diff.records_b} records "
        f"compared, identical={diff.identical}"
    )


def test_bench_flight_recorder_overhead_ratio():
    """OB4's loose CI guard; EXPERIMENTS.md records the precise ratio."""
    from repro.obs.recorder import FlightRecorder

    rounds = 5
    _run_sc1()  # warm-up: imports, guard compilation caches

    def clock(**kwargs):
        best = float("inf")
        for _ in range(rounds):
            start = time.perf_counter()
            _run_sc1(**kwargs)
            best = min(best, time.perf_counter() - start)
        return best

    off = clock()
    ring = clock(tracer=FlightRecorder(ring=256))
    full = clock(tracer=Tracer())
    print(
        f"\n[obs] OB4 SC1 wall: off={off * 1e3:.2f}ms "
        f"ring={ring * 1e3:.2f}ms full={full * 1e3:.2f}ms "
        f"ratio={ring / off:.2f}"
    )
    assert ring < off * 4.0, (off, ring)

"""Experiment: run-time workflow modification (Sections 1 and 6).

Times the add/remove reconfiguration path and asserts its semantics:
an added dependency is enforced from the point of addition (refused if
history already violated it); a removed dependency releases exactly
the events it alone was blocking.
"""

from repro.algebra.parser import parse
from repro.algebra.symbols import Event
from repro.scheduler import DistributedScheduler

E, F, G = Event("e"), Event("f"), Event("g")
D_PREC = parse("~e + ~f + e . f")


def test_bench_add_dependency(benchmark):
    def run():
        sched = DistributedScheduler([D_PREC])
        sched.attempt(E)
        sched.sim.run()
        accepted = sched.add_dependency_runtime(parse("~g + f . g"))
        sched.attempt(G)   # parked: needs f first under the new rule
        sched.attempt(F)
        result = sched.run(settle=True)
        return accepted, result

    accepted, result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert accepted
    order = [en.event for en in result.entries]
    assert order.index(G) > order.index(F)
    for dep in [D_PREC, parse("~g + f . g")]:
        from repro.algebra.traces import satisfies

        assert satisfies(result.trace, dep)


def test_bench_remove_dependency(benchmark):
    blocking = parse("~f + e . f")

    def run():
        sched = DistributedScheduler([blocking])
        sched.attempt(F)
        sched.sim.run()
        parked_before = not sched.result.entries
        removed = sched.remove_dependency_runtime(blocking)
        result = sched.run(settle=True)
        return parked_before, removed, result

    parked_before, removed, result = benchmark.pedantic(
        run, rounds=3, iterations=1
    )
    assert parked_before and removed
    assert F in {en.event for en in result.entries}
    assert result.messages_by_kind.get("reconfigure", 0) >= 1


def test_bench_retroactive_addition_refused(benchmark):
    def run():
        sched = DistributedScheduler([parse("~e + f"), parse("~f + e")])
        sched.attempt(F)
        sched.sim.run()
        sched.attempt(E)
        sched.sim.run()
        order = [en.event for en in sched.result.entries]
        accepted = None
        if order and order[0] == F:
            accepted = sched.add_dependency_runtime(D_PREC)
        return accepted, sched

    accepted, sched = benchmark.pedantic(run, rounds=3, iterations=1)
    if accepted is not None:
        assert accepted is False
        assert any(v.kind == "retroactive" for v in sched.result.violations)

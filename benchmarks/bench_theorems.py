"""Experiments T1/T2/T4/L3/L5/T6: the Section 3-4 formal results,
checked exhaustively over small alphabets and timed.
"""

import pytest

from repro.algebra.parser import parse
from repro.algebra.residuation import residual_matches_semantics, residuate
from repro.algebra.symbols import Event
from repro.algebra.traces import maximal_universe, satisfies
from repro.temporal.cubes import literal
from repro.temporal.guards import (
    generates,
    guard,
    lemma5_guard,
    workflow_guards,
)

from benchmarks.helpers import clear_symbolic_caches

E, F, G = Event("e"), Event("f"), Event("g")

DEPENDENCIES = [
    "~e + f",
    "~e + ~f + e . f",
    "e . f",
    "e | f",
    "e + f",
    "(e + f) . g",
    "e . f . g",
    "(~e + f) | (~f + g)",
]


def test_bench_theorem1_soundness(benchmark):
    """Rules 1-8 agree with Semantics 6 on feasible continuations."""

    def verify():
        clear_symbolic_caches()
        checked = 0
        for text in DEPENDENCIES:
            dep = parse(text)
            for ev in sorted(dep.alphabet()):
                assert residual_matches_semantics(dep, ev), (text, ev)
                checked += 1
        return checked

    checked = benchmark.pedantic(verify, rounds=3, iterations=1)
    assert checked >= 30


def test_bench_theorem2_choice_decomposition(benchmark):
    """G(D+E, e) = G(D,e) + G(E,e) for alphabet-disjoint D, E."""
    pairs = [("~e + f", "~g + h"), ("e . f", "g . h")]

    def verify():
        clear_symbolic_caches()
        for left, right in pairs:
            d, x = parse(left), parse(right)
            for ev in sorted(d.alphabet()):
                combined = guard(d + x, ev)
                split = guard(d, ev) | guard(x, ev)
                assert combined.equivalent(split), (left, right, ev)
        return True

    assert benchmark.pedantic(verify, rounds=3, iterations=1)


def test_bench_theorem4_conj_decomposition(benchmark):
    """G(D|E, e) = G(D,e) | G(E,e) for alphabet-disjoint D, E."""
    pairs = [("~e + f", "~g + h"), ("~e + ~f + e . f", "g + h")]

    def verify():
        clear_symbolic_caches()
        for left, right in pairs:
            d, x = parse(left), parse(right)
            for ev in sorted(d.alphabet()):
                combined = guard(d & x, ev)
                split = guard(d, ev) & guard(x, ev)
                assert combined.equivalent(split), (left, right, ev)
        return True

    assert benchmark.pedantic(verify, rounds=3, iterations=1)


def test_bench_lemma3_case_split(benchmark):
    """G(D,e) = !g|G(D,e) + []g|G(D/g,e) for foreign g."""

    def verify():
        clear_symbolic_caches()
        for text in ("~e + f", "~e + ~f + e . f", "e . f"):
            dep = parse(text)
            for ev in sorted(dep.alphabet()):
                base_guard = guard(dep, ev)
                for g_ev in sorted(dep.alphabet()):
                    if g_ev.base == ev.base:
                        continue
                    split = (literal("notyet", g_ev) & base_guard) | (
                        literal("box", g_ev) & guard(residuate(dep, g_ev), ev)
                    )
                    assert base_guard.equivalent(split)
        return True

    assert benchmark.pedantic(verify, rounds=3, iterations=1)


def test_bench_lemma5_path_sum(benchmark):
    """G(D,e) equals the sum over accepting paths Pi(D)."""

    def verify():
        clear_symbolic_caches()
        for text in ("~e + f", "~e + ~f + e . f", "e . f", "e | f"):
            dep = parse(text)
            for ev in sorted(dep.alphabet()):
                assert guard(dep, ev).equivalent(lemma5_guard(dep, ev))
        return True

    assert benchmark.pedantic(verify, rounds=3, iterations=1)


@pytest.mark.parametrize(
    "texts",
    [
        ["~e + f"],
        ["~e + ~f + e . f", "~e + f"],
        ["~e + ~f + e . f", "~f + ~g + f . g"],
        ["~e + f . g"],
    ],
    ids=["arrow", "prec+arrow", "chained-prec", "seq-insight"],
)
def test_bench_theorem6_generation(benchmark, texts):
    """W generates u iff u satisfies every D in W, exhaustively."""
    deps = [parse(t) for t in texts]
    bases = set()
    for d in deps:
        bases |= d.bases()

    def verify():
        table = workflow_guards(deps, mentioned_only=False)
        count = 0
        for u in maximal_universe(bases):
            assert generates(table, u) == all(satisfies(u, d) for d in deps)
            count += 1
        return count

    count = benchmark.pedantic(verify, rounds=3, iterations=1)
    assert count == len(list(maximal_universe(bases)))

"""Micro-benchmarks of the hot symbolic operations.

Not tied to a single paper artifact; these keep the core primitives
honest (parse, residuate, cube conjunction, joint-completion CSP,
guard minimization) and give downstream users cost expectations.
"""

from repro.algebra.parser import parse
from repro.algebra.residuation import residuate
from repro.algebra.symbols import Event
from repro.algebra.traces import Trace
from repro.scheduler.residuation_scheduler import joint_completion_exists
from repro.temporal.cubes import literal
from repro.temporal.simplify import minimize

from benchmarks.helpers import clear_symbolic_caches

E, F, G = Event("e"), Event("f"), Event("g")
D_PREC = parse("~e + ~f + e . f")


def test_bench_parse(benchmark):
    text = "~s_buy + ~c_buy + s_buy . c_book . c_buy + (a | b . c)"
    expr = benchmark(lambda: parse(text))
    assert expr.bases()


def test_bench_residuate_uncached(benchmark):
    def step():
        residuate.cache_clear()
        return residuate(D_PREC, E)

    result = benchmark(step)
    assert repr(result) == "f + ~f"


def test_bench_residuate_cached(benchmark):
    residuate(D_PREC, E)  # warm
    result = benchmark(lambda: residuate(D_PREC, E))
    assert repr(result) == "f + ~f"


def test_bench_cube_conjunction(benchmark):
    left = literal("box", E) | literal("notyet", F)
    right = literal("dia", F) | literal("dia", ~G)

    result = benchmark(lambda: left & right)
    assert not result.is_false


def test_bench_cube_holds_at(benchmark):
    g = (literal("box", E) & literal("notyet", F)) | literal("dia", ~F)
    trace = Trace([E, ~F, G])

    result = benchmark(lambda: g.holds_at(trace, 1))
    assert isinstance(result, bool)


def test_bench_joint_completion(benchmark):
    deps = tuple(
        parse(t)
        for t in (
            "~e + ~f + e . f",
            "~f + ~g + f . g",
            "~e + f",
            "~g + e",
        )
    )
    result = benchmark(lambda: joint_completion_exists(deps))
    assert result


def test_bench_joint_completion_unsat(benchmark):
    deps = tuple(parse(t) for t in ("e . f", "f . g", "g . e"))
    result = benchmark(lambda: joint_completion_exists(deps))
    assert not result


def test_bench_minimize(benchmark):
    g = (
        (literal("notyet", F) & literal("box", E))
        | (literal("notyet", F) & literal("notyet", E))
        | (literal("notyet", F) & literal("dia", E))
        | literal("dia", ~F)
    )
    minimized = benchmark(lambda: minimize(g))
    assert minimized.equivalent(g)


def test_bench_guard_synthesis_single(benchmark):
    from repro.temporal.guards import guard

    def run():
        clear_symbolic_caches()
        return guard(D_PREC, E)

    result = benchmark(run)
    assert repr(result) == "!f"

"""Shared helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one of the paper's artifacts
(figure, example, theorem, or scalability claim; see the experiment
index in DESIGN.md), asserts the reproduced *shape*, and times the
computation with pytest-benchmark.  Recorded outputs live in
EXPERIMENTS.md.
"""

from __future__ import annotations

import random

from repro.algebra.expressions import clear_intern_tables
from repro.algebra.normal_form import to_normal_form
from repro.algebra.residuation import residuate
from repro.temporal.compiled import clear_compiled
from repro.temporal.cubes import clear_simplify_cache
from repro.temporal.guards import (
    clear_synthesis_caches,
    guard,
    guard_formula,
)
from repro.temporal.watch import clear_watch_stats


def clear_symbolic_caches() -> None:
    """Clear memoization so benchmarks time the real computation."""
    residuate.cache_clear()
    to_normal_form.cache_clear()
    guard.cache_clear()
    guard_formula.cache_clear()
    clear_synthesis_caches()
    clear_simplify_cache()
    clear_watch_stats()
    clear_compiled()
    clear_intern_tables()


def run_scenario(scenario, scheduler_cls, **kwargs):
    workflow = scenario.workflow
    sched = scheduler_cls(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        **kwargs,
    )
    return sched.run(scenario.scripts)


def merged_travel_instances(count: int, rng_seed: int = 0):
    """``count`` independent travel-booking instances in one system."""
    from repro.workloads.scenarios import make_travel_booking

    rng = random.Random(rng_seed)
    scenarios = [
        make_travel_booking(
            "success" if rng.random() < 0.7 else "failure", suffix=f"_i{i}"
        )
        for i in range(count)
    ]
    workflow = scenarios[0].workflow
    scripts = list(scenarios[0].scripts)
    for scn in scenarios[1:]:
        workflow = workflow.merged(scn.workflow)
        scripts.extend(scn.scripts)
    return workflow, scripts


def templated_travel_instances(count: int, rng_seed: int = 0):
    """The :func:`merged_travel_instances` workload, built through the
    template fast path: guards are synthesized once on the un-suffixed
    travel workflow and stamped out per instance by rename.

    Returns ``(workflow, scripts, guards)`` -- pass ``guards`` to
    ``DistributedScheduler(guards=...)`` to skip its own synthesis.
    The outcome draw matches :func:`merged_travel_instances` exactly,
    so both builders describe the same runs.
    """
    from repro.workflows.template import WorkflowTemplate
    from repro.workloads.scenarios import make_travel_booking

    rng = random.Random(rng_seed)
    template = WorkflowTemplate(make_travel_booking().workflow)
    workflow = None
    scripts = []
    guards = {}
    for i in range(count):
        outcome = "success" if rng.random() < 0.7 else "failure"
        instance = template.instantiate(f"_i{i}")
        workflow = (
            instance.workflow if workflow is None
            else workflow.merged(instance.workflow)
        )
        guards.update(instance.guards)
        scripts.extend(
            instance.instantiate_script(script)
            for script in make_travel_booking(outcome).scripts
        )
    return workflow, scripts, guards


def travel_instance_specs(count: int, rng_seed: int = 0):
    """The same workload as shard-ready :class:`InstanceSpec` rows.

    Returns ``(template_workflow, instances)`` for
    :func:`repro.scale.plan_shards`; the outcome draw again matches
    :func:`merged_travel_instances`.
    """
    from repro.scale import instance_spec
    from repro.workloads.scenarios import make_travel_booking

    rng = random.Random(rng_seed)
    template = make_travel_booking().workflow
    instances = [
        instance_spec(
            f"_i{i}",
            make_travel_booking(
                "success" if rng.random() < 0.7 else "failure",
                suffix=f"_i{i}",
            ).scripts,
        )
        for i in range(count)
    ]
    return template, instances

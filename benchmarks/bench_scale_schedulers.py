"""Experiment SC1: centralized vs distributed as workflows multiply.

The paper's case for the event-centric scheduler (Sections 1, 4, 6) is
distribution itself: no central node, local decisions, information
flowing as soon as it is available.  This bench runs N independent
travel-booking instances under each scheduler and compares

* the *bottleneck load* (messages handled by the busiest site) --
  the centralized scheduler funnels every decision through one node,
  so its maximum site load grows linearly with N while the distributed
  scheduler's stays flat per instance;
* the end-to-end makespan under non-zero network latency and a small
  per-decision service time at the central node.

Absolute numbers are simulator-scale; the *shape* (who wins, roughly
linear growth of the central bottleneck) is the reproduced claim.
"""

import random

import pytest

from repro.scheduler import (
    AutomataScheduler,
    CentralizedScheduler,
    DistributedScheduler,
)
from repro.sim.network import ConstantLatency

from benchmarks.helpers import merged_travel_instances

LATENCY = 1.0
SERVICE = 0.2


def _run(scheduler_cls, count, **kwargs):
    workflow, scripts = merged_travel_instances(count)
    sched = scheduler_cls(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=ConstantLatency(LATENCY),
        rng=random.Random(1),
        **kwargs,
    )
    result = sched.run(scripts)
    assert result.ok, result.violations
    return result


@pytest.mark.parametrize("count", [2, 4, 8])
def test_bench_distributed_scaling(benchmark, count):
    result = benchmark.pedantic(
        lambda: _run(DistributedScheduler, count), rounds=3, iterations=1
    )
    # actors are spread across sites: no single site dominates
    assert result.max_site_load <= result.messages // 2
    # instances are independent: the busiest site's load is an
    # instance-local constant, not a function of N
    assert result.max_site_load <= 60


@pytest.mark.parametrize("count", [2, 4, 8])
def test_bench_centralized_scaling(benchmark, count):
    result = benchmark.pedantic(
        lambda: _run(
            CentralizedScheduler, count, decision_service_time=SERVICE
        ),
        rounds=3,
        iterations=1,
    )
    # every attempt funnels through the center
    assert result.max_site_load >= count * 3


@pytest.mark.parametrize("count", [4])
def test_bench_automata_scaling(benchmark, count):
    result = benchmark.pedantic(
        lambda: _run(AutomataScheduler, count, decision_service_time=SERVICE),
        rounds=3,
        iterations=1,
    )
    assert result.ok


@pytest.mark.parametrize("count", [16, 64])
def test_bench_sharded_vs_merged(benchmark, count):
    """SC6: the same N instances, one merged scheduler vs 4 shards.

    The settled event set must agree; the sharded runner's win is
    wall-clock (it dodges the merged scheduler's whole-system
    settlement scan and re-synthesizes guards once per shard via the
    template).  Makespans are not compared: per-shard RNG streams
    legitimately reorder message timings.
    """
    from repro.scale import plan_shards, run_sharded

    from benchmarks.helpers import travel_instance_specs

    template, instances = travel_instance_specs(count)
    tasks = plan_shards(template, instances, 4, seed=1, latency=LATENCY)

    sharded = benchmark.pedantic(
        lambda: run_sharded(tasks, workers=2), rounds=3, iterations=1
    )
    assert sharded.result.ok, sharded.result.violations
    merged = _run(DistributedScheduler, count)
    assert (
        {repr(e.event) for e in sharded.result.entries}
        == {repr(e.event) for e in merged.entries}
    )
    # per-site load stays an instance-local constant under sharding too
    assert sharded.result.max_site_load <= 60


def test_bench_bottleneck_shape(benchmark):
    """The headline comparison: central bottleneck grows ~linearly with
    N; the distributed per-site maximum stays bounded."""

    def sweep():
        rows = []
        for count in (2, 4, 8, 16):
            dist = _run(DistributedScheduler, count)
            cent = _run(
                CentralizedScheduler, count, decision_service_time=SERVICE
            )
            rows.append(
                {
                    "instances": count,
                    "dist_max_site_load": dist.max_site_load,
                    "cent_max_site_load": cent.max_site_load,
                    "dist_makespan": dist.makespan,
                    "cent_makespan": cent.makespan,
                    "dist_messages": dist.messages,
                    "cent_messages": cent.messages,
                    "cent_queue_wait": cent.central_queue_wait,
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    by_count = {row["instances"]: row for row in rows}
    # centralized bottleneck grows with N, roughly linearly...
    assert (
        by_count[16]["cent_max_site_load"]
        > by_count[8]["cent_max_site_load"]
        > by_count[4]["cent_max_site_load"]
        > by_count[2]["cent_max_site_load"]
    )
    assert by_count[16]["cent_max_site_load"] >= 6 * by_count[2]["cent_max_site_load"]
    # ...and so does its queue wait and makespan
    assert by_count[16]["cent_queue_wait"] > by_count[2]["cent_queue_wait"]
    assert by_count[16]["cent_makespan"] > 2 * by_count[2]["cent_makespan"]
    # independent instances keep the distributed per-site load and the
    # distributed makespan flat (instance-local constants)
    assert by_count[16]["dist_max_site_load"] <= by_count[2]["dist_max_site_load"] * 1.5
    assert by_count[16]["dist_makespan"] <= by_count[2]["dist_makespan"] * 1.5
    # the crossover: at high load the distributed scheduler wins both
    # bottleneck load and makespan (the paper's scalability claim)
    assert (
        by_count[16]["dist_max_site_load"]
        < by_count[16]["cent_max_site_load"]
    )
    assert by_count[16]["dist_makespan"] < by_count[16]["cent_makespan"]
    # the honest trade-off: the event-centric protocol sends more
    # messages in total -- they are just spread across sites
    assert by_count[16]["dist_messages"] > by_count[16]["cent_messages"]

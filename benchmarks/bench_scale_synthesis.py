"""Experiment SC3: guard synthesis cost vs runtime evaluation cost.

Section 6: "Much of the required symbolic reasoning can be
precompiled, leading to efficiency at runtime."  Synthesis (Definition
2's recursion) grows with the dependency's alphabet; evaluating the
compiled cube guard at run time stays microseconds regardless.
"""

import pytest

from repro.algebra.expressions import Choice, Seq, Atom
from repro.algebra.symbols import Event
from repro.algebra.traces import Trace
from repro.temporal.guards import guard

from benchmarks.helpers import clear_symbolic_caches


def wide_dependency(k: int):
    """``~e + a0 . a1 . ... . a(k-1)``: if e occurs, a pipeline runs."""
    e = Event("e")
    atoms = [Atom(Event(f"a{i}")) for i in range(k)]
    return Choice.of([Atom(~e), Seq.of(atoms)]), e


@pytest.mark.parametrize("k", [2, 4, 6])
def test_bench_synthesis_cost(benchmark, k):
    dep, e = wide_dependency(k)

    def synthesize():
        clear_symbolic_caches()
        return guard(dep, e)

    g = benchmark.pedantic(synthesize, rounds=3, iterations=1)
    assert not g.is_false


@pytest.mark.parametrize("k", [2, 4, 6])
def test_bench_runtime_evaluation(benchmark, k):
    """Evaluating the precompiled guard at a trace point."""
    dep, e = wide_dependency(k)
    g = guard(dep, e)
    events = [Event(f"a{i}") for i in range(k)]
    trace = Trace(events + [e])

    result = benchmark(lambda: g.holds_at(trace, k))
    assert result  # the whole pipeline is guaranteed: e may go


def test_bench_precompilation_amortizes(benchmark):
    """One synthesis, many evaluations: the paper's runtime story."""
    dep, e = wide_dependency(5)
    events = [Event(f"a{i}") for i in range(5)]
    trace = Trace(events + [e])

    def compiled_run():
        g = guard(dep, e)  # cached after first call: the compiled form
        return sum(g.holds_at(trace, i) for i in range(len(trace) + 1))

    hits = benchmark(compiled_run)
    assert hits >= 1

"""Design-choice ablations for the distributed scheduler.

DESIGN.md calls out three protocol mechanisms beyond the paper's
minimum sketch; each exists for a measurable reason.  This bench turns
them off one at a time and records what breaks or degrades:

* **promise chaining** off -> optimistic grants; broken promises
  appear on workloads whose eventuality chains dead-end;
* **lazy triggering** off -> compensating/fallback events fire on
  success paths;
* **certificates** off -> ``!f`` guards lose their concurrency: the
  guarded event waits for the base to settle instead of running ahead.
"""

from repro.algebra.parser import parse
from repro.algebra.symbols import Event
from repro.scheduler import DistributedScheduler
from repro.scheduler.agents import AgentScript, ScriptedAttempt
from repro.scheduler.events import EventAttributes, SchedulerPolicy
from repro.workloads.generators import chain_workflow, scripts_for

E, F = Event("e"), Event("f")


def _run(deps_or_workflow, scripts, policy=None, attributes=None):
    if hasattr(deps_or_workflow, "dependencies"):
        w = deps_or_workflow
        sched = DistributedScheduler(
            w.dependencies, sites=w.sites, attributes=w.attributes,
            policy=policy,
        )
    else:
        sched = DistributedScheduler(
            deps_or_workflow, attributes=attributes or {}, policy=policy
        )
    return sched.run([AgentScript(s.site, list(s.attempts)) for s in scripts])


def test_bench_ablation_promise_chaining(benchmark):
    """Chaining ON: dropped-head chains settle clean.  OFF: an
    optimistic grant lets the head fire on a promise later broken."""
    w = chain_workflow(4)
    scripts = scripts_for(w, seed=3, participation=0.5)

    def sweep():
        on = _run(w, scripts)
        off = _run(w, scripts, policy=SchedulerPolicy(promise_chaining=False))
        return on, off

    on, off = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert on.ok and not on.unsettled
    assert any(v.kind == "promise" for v in off.violations)


def test_bench_ablation_lazy_triggering(benchmark):
    """Lazy ON: the fallback never runs when the real event shows up.
    OFF: the fallback fires eagerly and needlessly."""
    a_comp, z_real = Event("a_comp"), Event("z_real")
    deps = [parse("~e + a_comp + z_real")]
    attributes = {a_comp: EventAttributes(triggerable=True)}
    scripts = [
        AgentScript("s", [ScriptedAttempt(0.0, E), ScriptedAttempt(2.0, z_real)])
    ]

    def sweep():
        lazy = _run(deps, scripts, attributes=attributes)
        eager = _run(
            deps, scripts,
            policy=SchedulerPolicy(lazy_triggering=False),
            attributes=attributes,
        )
        return lazy, eager

    lazy, eager = benchmark.pedantic(sweep, rounds=3, iterations=1)
    lazy_events = {en.event for en in lazy.entries}
    eager_events = {en.event for en in eager.entries}
    assert a_comp not in lazy_events
    assert a_comp in eager_events


def test_bench_ablation_certificates(benchmark):
    """Certificates ON: e (guard ``!f``) fires while f is merely
    parked -- the concurrency the paper's Example 10 narrative
    highlights.  OFF: no certificate rounds run at all."""
    d = parse("~e + ~f + e . f")
    scripts = [
        AgentScript("s", [ScriptedAttempt(0.0, E), ScriptedAttempt(1.0, F)])
    ]

    def sweep():
        on = _run([d], scripts)
        off = _run([d], scripts, policy=SchedulerPolicy(certificates=False))
        return on, off

    on, off = benchmark.pedantic(sweep, rounds=3, iterations=1)
    assert [en.event for en in on.entries] == [E, F]
    assert on.not_yet_rounds >= 1
    assert off.not_yet_rounds == 0
    # both orderings remain valid traces
    assert on.ok and off.ok

"""Experiment X14: guard growth, shrinkage, and resurrection.

Example 14: the guard on ``e[x]`` is ``!f[y] + []g[y]`` with ``y``
unbound.  ``f[y1]`` blocks ``e[x]`` (the instance map grows);
``[]g[y1]`` arriving restores the guard (the instance shrinks away)
and ``e[x]`` is "once again enabled" -- the mechanism that handles
tasks that are not loop-free.
"""

from repro.algebra.symbols import Event, Variable
from repro.params.guards import ParametrizedGuard
from repro.temporal.cubes import literal

Y = Variable("y")
F_Y = Event("f", params=(Y,))
G_Y = Event("g", params=(Y,))


def _template():
    return literal("notyet", F_Y) | literal("box", G_Y)


def tok(name, value):
    return Event(name, params=(value,))


def test_bench_example14_cycle(benchmark):
    def cycle():
        pg = ParametrizedGuard(_template())
        states = [pg.holds_now()]               # enabled
        pg.observe(tok("f", "y1"))
        states.append(pg.holds_now())           # blocked
        pg.observe(tok("g", "y1"))
        states.append(pg.holds_now())           # resurrected
        return pg, states

    pg, states = benchmark(cycle)
    assert states == [True, False, True]
    assert [kind for kind, _ in pg.history] == ["grow", "shrink"]
    assert pg.live_instances() == {}


def test_bench_example14_blocked_residual(benchmark):
    """Mid-cycle, the instance map holds exactly the paper's residual:
    ``[]g[y-hat] | (!f[y] + []g[y])`` -- rendered here as the ground
    residual ``[]g['y1']`` alongside the untouched template."""
    pg = ParametrizedGuard(_template())
    pg.observe(tok("f", "y1"))

    def inspect():
        return dict(pg.live_instances())

    instances = benchmark(inspect)
    assert len(instances) == 1
    (residual,) = instances.values()
    assert residual == literal("box", tok("g", "y1"))


def test_bench_example14_many_bindings(benchmark):
    """Scale the instance map: 50 bindings grow, then all shrink."""

    def churn():
        pg = ParametrizedGuard(_template())
        for i in range(50):
            pg.observe(tok("f", f"y{i}"))
        grown = len(pg.live_instances())
        for i in range(50):
            pg.observe(tok("g", f"y{i}"))
        return grown, len(pg.live_instances()), pg.holds_now()

    grown, remaining, enabled = benchmark(churn)
    assert grown == 50
    assert remaining == 0
    assert enabled

"""Experiment F3: regenerate Figure 3's temporal-operator truth table.

The table relates ``!e, []e, <>e, !~e, []~e, <>~e`` to the four points
``(<e>, 0), (<e>, 1), (<~e>, 0), (<~e>, 1)``, and motivates the six
identities (a)-(f) of Example 8.  The bench recomputes the full table
from the exact semantics and re-proves the identities.
"""

from repro.algebra.symbols import Event
from repro.algebra.traces import Trace
from repro.temporal.formulas import (
    Always,
    Eventually,
    NotYet,
    TAtom,
    TChoice,
    TConj,
    T_TOP,
    T_ZERO,
)
from repro.temporal.semantics import holds, t_equivalent

E = Event("e")

ROWS = [
    ("!e", NotYet(TAtom(E)), [True, False, True, True]),
    ("[]e", Always(TAtom(E)), [False, True, False, False]),
    ("<>e", Eventually(TAtom(E)), [True, True, False, False]),
    ("!~e", NotYet(TAtom(~E)), [True, True, True, False]),
    ("[]~e", Always(TAtom(~E)), [False, False, False, True]),
    ("<>~e", Eventually(TAtom(~E)), [False, False, True, True]),
]

POINTS = [(Trace([E]), 0), (Trace([E]), 1), (Trace([~E]), 0), (Trace([~E]), 1)]


def test_bench_figure3_table(benchmark):
    def build():
        return {
            name: [holds(u, i, formula) for u, i in POINTS]
            for name, formula, _ in ROWS
        }

    table = benchmark(build)
    for name, _formula, expected in ROWS:
        assert table[name] == expected, name


def test_bench_example8_identities(benchmark):
    box_e, box_ce = Always(TAtom(E)), Always(TAtom(~E))
    dia_e, dia_ce = Eventually(TAtom(E)), Eventually(TAtom(~E))
    not_e = NotYet(TAtom(E))

    def verify():
        return (
            not t_equivalent(TChoice.of([box_e, box_ce]), T_TOP),     # (a)
            t_equivalent(TChoice.of([dia_e, dia_ce]), T_TOP),         # (b)
            t_equivalent(TConj.of([dia_e, dia_ce]), T_ZERO),          # (c)
            not t_equivalent(TChoice.of([dia_e, box_ce]), T_TOP),     # (d)
            t_equivalent(TChoice.of([not_e, box_e]), T_TOP),          # (e)
            t_equivalent(TChoice.of([not_e, box_ce]), not_e),         # (f)
        )

    results = benchmark(verify)
    assert all(results)

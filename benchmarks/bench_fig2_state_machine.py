"""Experiment F2: regenerate Figure 2's scheduler state machines.

Figure 2 draws the residuation state graphs of ``D_<`` and ``D_->``.
This bench rebuilds both via the residual-closure automaton, asserts
every state and transition the figure shows, and times the closure.
"""

from repro.algebra.parser import parse
from repro.algebra.symbols import Event
from repro.scheduler.automata import DependencyAutomaton

from benchmarks.helpers import clear_symbolic_caches

E, F = Event("e"), Event("f")
D_PREC = parse("~e + ~f + e . f")
D_ARROW = parse("~e + f")


def _state_graph(dependency):
    auto = DependencyAutomaton(dependency)
    labels = {i: repr(expr) for i, expr in enumerate(auto.states)}
    edges = {
        (labels[src], repr(ev), labels[dst])
        for (src, ev), dst in auto.transitions.items()
        if src != dst  # omit self-loops for the figure view
    }
    return auto, labels, edges


def test_bench_figure2_precedes(benchmark):
    def build():
        clear_symbolic_caches()
        return _state_graph(D_PREC)

    auto, labels, edges = benchmark(build)
    # Figure 2 left: initial state D_<, then e-successor (f + ~f),
    # f-successor (~e), and the sinks T and 0.
    assert sorted(labels.values()) == sorted(
        ["~e + ~f + e . f", "f + ~f", "~e", "T", "0"]
    )
    assert ("~e + ~f + e . f", "e", "f + ~f") in edges
    assert ("~e + ~f + e . f", "f", "~e") in edges
    assert ("~e + ~f + e . f", "~e", "T") in edges
    assert ("~e + ~f + e . f", "~f", "T") in edges
    assert ("f + ~f", "f", "T") in edges
    assert ("f + ~f", "~f", "T") in edges
    assert ("~e", "~e", "T") in edges
    assert ("~e", "e", "0") in edges


def test_bench_figure2_arrow(benchmark):
    def build():
        clear_symbolic_caches()
        return _state_graph(D_ARROW)

    auto, labels, edges = benchmark(build)
    # Figure 2 right: D_->, e-successor f, ~f-successor ~e, sinks.
    assert sorted(labels.values()) == sorted(["~e + f", "f", "~e", "T", "0"])
    assert ("~e + f", "e", "f") in edges
    assert ("~e + f", "~f", "~e") in edges
    assert ("~e + f", "~e", "T") in edges
    assert ("~e + f", "f", "T") in edges
    assert ("f", "f", "T") in edges
    assert ("f", "~f", "0") in edges
    assert ("~e", "e", "0") in edges
    assert ("~e", "~e", "T") in edges


def test_bench_example5_transition_narrative(benchmark):
    """Example 5's narrative: after f under D_<, only ~e is possible."""
    from repro.algebra.residuation import residuate_trace

    def walk():
        clear_symbolic_caches()
        return (
            residuate_trace(D_PREC, [F, ~E]),
            residuate_trace(D_PREC, [F, E]),
            residuate_trace(D_PREC, [E, F]),
        )

    discharged, dead, ordered = benchmark(walk)
    assert repr(discharged) == "T"
    assert repr(dead) == "0"
    assert repr(ordered) == "T"

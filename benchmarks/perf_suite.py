"""PF1: the perf-regression harness for the symbolic kernel.

Runs three workload families and emits a machine-readable
``BENCH_PERF.json``:

* **synthesis** -- cold-cache guard synthesis on SC3's widening
  staircase (``~e + a0 . a1 ... a(k-1)``, k in {2, 4, 6}) and the
  whole-workflow guard table of a merged travel workload;
* **guard evaluation** -- ``holds_at`` / ``simplify_under`` /
  ``region_subsumes`` throughput on a compiled guard (the actor loop's
  hot operations);
* **end-to-end** -- SC1's N=16 merged travel instances on the
  distributed scheduler (raw fabric, plus the announcement-batching
  variant when the scheduler supports it) and an SC5-style chaos run
  (reliable sessions, drop/dup, one crash/restart);
* **scale-out** (PF2/SC6, when :mod:`repro.scale` is available) --
  template-instantiated guard synthesis vs per-instance synthesis at
  N=64 (required: >= 5x), and the N=64 workload sharded 4 ways on the
  process-pool runner vs one merged scheduler (required: sharded
  wall-clock wins; on a single-core host the win comes from dodging
  the merged scheduler's superlinear settlement scan, not from
  parallelism);
* **cross-shard** (SC7, when :mod:`repro.scale.engine` is available)
  -- the Example 13 mutex family at N in {64, 256}, merged vs min-cut
  sharded (required: the N=256 min-cut run wins), round-robin with
  gateway routing, and a skewed layout with and without work stealing
  (required: stealing wins over the skew it rebalances);
* **compiled guards** (PF4, when the scheduler supports
  ``compiled_guards=``) -- per-announcement guard-eval cost of the
  cube engine (``simplify_under`` with its ``O(|K| log |K|)`` memo-key
  build) vs the compiled automaton cursor (one interned edge hop) at
  fan-in n in {10, 100} (required: compiled >= 3x cheaper per
  announcement at fan-in 100), plus the four-way ablation
  cube / watch / compiled / watch+compiled on a mixed parked+coupled
  workload (required: identical observables across arms, and
  watch+compiled the best arm at n=100).

Timings are reported both raw and *normalized* by a pure-Python
calibration spin, so a checked-in baseline from one machine can gate
another machine's run: ``--baseline FILE`` fails (exit 1) when any
workload's normalized time regresses by more than ``--tolerance``
(default 25%), or when any deterministic observable (virtual makespan,
message counts, cube counts) changed at all -- the optimizations this
harness guards are required to be semantics-preserving.

Usage::

    PYTHONPATH=src python benchmarks/perf_suite.py              # full
    PYTHONPATH=src python benchmarks/perf_suite.py --quick      # CI
    PYTHONPATH=src python benchmarks/perf_suite.py \
        --baseline BENCH_PERF.json --tolerance 0.25             # gate
    PYTHONPATH=src python benchmarks/perf_suite.py \
        --compare benchmarks/baselines/perf_before.json         # PF1
"""

from __future__ import annotations

import argparse
import gc
import inspect
import json
import os
import random
import sys
import time

_HERE = os.path.dirname(os.path.abspath(__file__))
_ROOT = os.path.dirname(_HERE)
for path in (_ROOT, os.path.join(_ROOT, "src")):
    if path not in sys.path:
        sys.path.insert(0, path)

from repro.algebra.expressions import Atom, Choice, Seq  # noqa: E402
from repro.algebra.symbols import Event  # noqa: E402
from repro.algebra.traces import Trace  # noqa: E402
from repro.scheduler.guard_scheduler import DistributedScheduler  # noqa: E402
from repro.sim.faults import FaultPlan, SiteCrash  # noqa: E402
from repro.sim.network import ConstantLatency  # noqa: E402
from repro.temporal.guards import guard, workflow_guards  # noqa: E402

from benchmarks.helpers import (  # noqa: E402
    clear_symbolic_caches,
    merged_travel_instances,
)

SCHEMA = 1

#: Deterministic observables: compared exactly against the baseline.
#: A mismatch means the "optimization" changed semantics, not speed.
EXACT_FIELDS = (
    "cubes",
    "literals",
    "makespan",
    "messages",
    "announce_messages",
    "settled",
    "table_size",
    "wakes",
    "skips",
    "cut_weight",
    "cross_messages",
    "steals",
    "hops",
)


def _best_of(fn, rounds: int) -> tuple[float, object]:
    """Minimum wall time over ``rounds`` calls (noise-robust)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        best = min(best, elapsed)
    return best, result


def calibrate(rounds: int) -> float:
    """A fixed pure-Python spin; the unit for normalized timings."""

    def spin():
        acc = 0
        for i in range(400_000):
            acc += i * i
        return acc

    seconds, _ = _best_of(spin, rounds)
    return seconds


def wide_dependency(k: int):
    """SC3's staircase: ``~e + a0 . a1 . ... . a(k-1)``."""
    e = Event("e")
    atoms = [Atom(Event(f"a{i}")) for i in range(k)]
    return Choice.of([Atom(~e), Seq.of(atoms)]), e


def bench_synthesis(rounds: int) -> dict:
    out: dict[str, dict] = {}
    for k in (2, 4, 6):
        dep, e = wide_dependency(k)

        def cold():
            clear_symbolic_caches()
            return guard(dep, e)

        seconds, g = _best_of(cold, rounds)
        out[f"synthesis_cold_k{k}"] = {
            "seconds": seconds,
            "cubes": g.cube_count(),
            "literals": g.literal_count(),
        }
    workflow, _scripts = merged_travel_instances(4)

    def table():
        clear_symbolic_caches()
        return workflow_guards(workflow.dependencies)

    seconds, guards = _best_of(table, rounds)
    out["synthesis_table_travel4"] = {
        "seconds": seconds,
        "table_size": len(guards),
        "cubes": sum(g.cube_count() for g in guards.values()),
    }
    return out


def bench_guard_eval(evals: int, rounds: int) -> dict:
    from repro.temporal.cubes import C_OCC, E_OCC

    dep, e = wide_dependency(6)
    g = guard(dep, e)
    events = [Event(f"a{i}") for i in range(6)]
    trace = Trace(events + [e])
    indices = list(range(len(trace) + 1))

    def eval_loop():
        hits = 0
        for i in range(evals):
            hits += g.holds_at(trace, indices[i % len(indices)])
        return hits

    seconds, _ = _best_of(eval_loop, rounds)
    result = {
        "holds_at": {
            "seconds": seconds,
            "evals": evals,
            "evals_per_second": evals / seconds if seconds else 0.0,
        }
    }

    # the actor loop's per-announcement work: one fact arrives, the
    # residual guard is recomputed, then fire/park/never is decided
    knowledge_steps = [
        {events[j]: E_OCC for j in range(i)} for i in range(len(events))
    ]
    knowledge_steps += [
        {**step, Event("e"): C_OCC} for step in knowledge_steps
    ]

    def simplify_loop():
        count = 0
        for i in range(evals):
            step = knowledge_steps[i % len(knowledge_steps)]
            residual = g.simplify_under(step)
            count += residual.cube_count()
            residual.region_subsumes(step)
            residual.possible_under(step)
        return count

    seconds, _ = _best_of(simplify_loop, rounds)
    result["simplify_under"] = {
        "seconds": seconds,
        "evals": evals,
        "evals_per_second": evals / seconds if seconds else 0.0,
    }
    return result


def _supports_batching() -> bool:
    params = inspect.signature(DistributedScheduler.__init__).parameters
    return "batch_announcements" in params


def _run_sc1(count: int, batch: bool) -> tuple[float, object, object]:
    workflow, scripts = merged_travel_instances(count)
    kwargs = {}
    if batch:
        kwargs["batch_announcements"] = True
    start = time.perf_counter()
    sched = DistributedScheduler(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        latency=ConstantLatency(1.0),
        rng=random.Random(1),
        **kwargs,
    )
    result = sched.run(scripts)
    elapsed = time.perf_counter() - start
    assert result.ok, result.violations
    return elapsed, result, sched


def bench_end_to_end(rounds: int) -> dict:
    out: dict[str, dict] = {}
    best = float("inf")
    result = None
    for _ in range(rounds):
        elapsed, result, _sched = _run_sc1(16, batch=False)
        best = min(best, elapsed)
    out["sc1_n16"] = {
        "seconds": best,
        "makespan": result.makespan,
        "messages": result.messages,
        "announce_messages": result.messages_by_kind.get("announce", 0),
        "settled": len(result.entries),
    }
    if _supports_batching():
        best = float("inf")
        for _ in range(rounds):
            elapsed, bresult, _sched = _run_sc1(16, batch=True)
            best = min(best, elapsed)
        out["sc1_n16_batched"] = {
            "seconds": best,
            "makespan": bresult.makespan,
            "messages": bresult.messages,
            "announce_messages": bresult.messages_by_kind.get("announce", 0),
            "settled": len(bresult.entries),
        }
        # batching must not change what happened, only how many
        # envelopes carried it
        assert bresult.makespan == result.makespan, (
            bresult.makespan, result.makespan)
        assert [
            (repr(e.event), e.time) for e in bresult.entries
        ] == [(repr(e.event), e.time) for e in result.entries]
        assert bresult.messages < result.messages, (
            "announcement batching did not reduce the SC1 message count: "
            f"{bresult.messages} vs {result.messages}"
        )
    return out


def _supports_watching() -> bool:
    params = inspect.signature(DistributedScheduler.__init__).parameters
    return "watch_mode" in params


def _supports_sharding() -> bool:
    try:
        import repro.scale  # noqa: F401

        return True
    except ImportError:
        return False


def bench_template_synthesis(rounds: int) -> dict:
    """PF2: per-instance guard synthesis vs template instantiation."""
    from repro.workloads.scenarios import make_travel_booking
    from repro.workflows.template import WorkflowTemplate

    suffixes = [f"_i{i}" for i in range(64)]

    def per_instance():
        clear_symbolic_caches()
        size = cubes = 0
        for suffix in suffixes:
            workflow = make_travel_booking(suffix=suffix).workflow
            table = workflow_guards(workflow.dependencies)
            size += len(table)
            cubes += sum(g.cube_count() for g in table.values())
        return size, cubes

    seconds, (size, cubes) = _best_of(per_instance, rounds)
    out = {
        "pf2_synthesis_per_instance_n64": {
            "seconds": seconds, "table_size": size, "cubes": cubes,
        }
    }

    def templated():
        clear_symbolic_caches()
        template = WorkflowTemplate(make_travel_booking().workflow)
        size = cubes = 0
        for suffix in suffixes:
            table = template.instantiate(suffix).guards
            size += len(table)
            cubes += sum(g.cube_count() for g in table.values())
        return size, cubes

    tseconds, (tsize, tcubes) = _best_of(templated, rounds)
    speedup = seconds / tseconds if tseconds else 0.0
    out["pf2_synthesis_template_n64"] = {
        "seconds": tseconds, "table_size": tsize, "cubes": tcubes,
        "speedup": speedup,
    }
    # the template path must produce the same tables, just faster
    assert (tsize, tcubes) == (size, cubes), (
        f"template tables differ: {(tsize, tcubes)} vs {(size, cubes)}"
    )
    assert speedup >= 5.0, (
        "template instantiation is required to beat per-instance "
        f"synthesis by >= 5x at N=64; measured {speedup:.1f}x"
    )
    return out


def bench_scale_out(rounds: int) -> dict:
    """SC6: the N=64 travel workload, merged vs sharded 4 ways."""
    from benchmarks.helpers import travel_instance_specs
    from repro.scale import plan_shards, run_sharded

    out: dict[str, dict] = {}
    merged_best = float("inf")
    merged_result = None
    for _ in range(rounds):
        elapsed, merged_result, _sched = _run_sc1(64, batch=False)
        merged_best = min(merged_best, elapsed)
    out["sc1_n64"] = {
        "seconds": merged_best,
        "makespan": merged_result.makespan,
        "messages": merged_result.messages,
        "announce_messages": merged_result.messages_by_kind.get(
            "announce", 0
        ),
        "settled": len(merged_result.entries),
    }

    template, instances = travel_instance_specs(64)

    def sharded():
        tasks = plan_shards(
            template, instances, 4, seed=1, latency=1.0
        )
        return run_sharded(tasks, workers=2)

    sharded_best, sharded_run = _best_of(sharded, rounds)
    result = sharded_run.result
    assert result.ok, result.violations
    out["sc1_n64_sharded"] = {
        "seconds": sharded_best,
        "makespan": result.makespan,
        "messages": result.messages,
        "announce_messages": result.messages_by_kind.get("announce", 0),
        "settled": len(result.entries),
        "shards": sharded_run.shards,
        "workers": sharded_run.workers,
        "speedup_vs_merged": (
            merged_best / sharded_best if sharded_best else 0.0
        ),
    }
    # independent instances: sharding must not change what settles
    assert (
        {repr(e.event) for e in result.entries}
        == {repr(e.event) for e in merged_result.entries}
    ), "sharded run settled a different event set than the merged run"
    assert sharded_best < merged_best, (
        "the sharded N=64 workload is required to beat the merged "
        f"single scheduler: {sharded_best:.3f}s vs {merged_best:.3f}s"
    )
    return out


def _supports_cross_shard() -> bool:
    try:
        from repro.scale.engine import run_group  # noqa: F401
        from repro.workloads.scenarios import make_mutex_family  # noqa: F401

        return True
    except ImportError:
        return False


def bench_scale_mutex(rounds: int) -> dict:
    """SC7: the Example 13 mutex family, merged vs sharded 3 ways.

    Unlike SC6's independent travel instances, every cluster of four
    critical-section tasks here is *coupled* by cross-instance mutex
    dependencies, so sharding is only legal with the cross-shard
    machinery: min-cut placement colocates each cluster (cut 0),
    round-robin splits every cluster and routes the announcements over
    the exactly-once gateway channel, and a deliberately skewed
    explicit layout exercises work-stealing rebalancing.
    """
    from repro.scale import instance_spec, plan_shards, run_sharded
    from repro.workloads.scenarios import make_mutex_family

    out: dict[str, dict] = {}
    # N=256 runs take seconds each; cap repetitions in full mode
    heavy_rounds = min(rounds, 3)

    def merged(n):
        family = make_mutex_family(n, cluster=4)
        workflow, scripts = family.merged()
        sched = DistributedScheduler(
            workflow.dependencies,
            sites=workflow.sites,
            attributes=workflow.attributes,
            rng=random.Random(9),
        )
        result = sched.run(scripts)
        assert result.ok, result.violations
        return result

    def sharded(n, reps, **plan_kwargs):
        family = make_mutex_family(n, cluster=4)
        instances = [
            instance_spec(suffix, scripts)
            for suffix, scripts in family.instances
        ]
        steal = plan_kwargs.pop("steal", False)

        def run():
            tasks = plan_shards(
                family.template,
                instances,
                4,
                seed=1,
                cross_deps=family.cross_dependencies,
                **plan_kwargs,
            )
            return tasks, run_sharded(tasks, workers=4, steal=steal)

        seconds, (tasks, sharded_run) = _best_of(run, reps)
        assert sharded_run.result.ok, sharded_run.result.violations
        return seconds, tasks, sharded_run

    def record(seconds, result, **extra):
        row = {
            "seconds": seconds,
            "makespan": result.makespan,
            "messages": result.messages,
            "settled": len(result.entries),
        }
        row.update(extra)
        return row

    for n, reps in ((64, rounds), (256, heavy_rounds)):
        merged_best, merged_result = _best_of(lambda n=n: merged(n), reps)
        out[f"sc7_mutex_n{n}_merged"] = record(merged_best, merged_result)

        cut_best, tasks, cut_run = sharded(n, reps, placement="min_cut")
        out[f"sc7_mutex_n{n}_min_cut"] = record(
            cut_best,
            cut_run.result,
            cut_weight=tasks.cut_weight,
            cross_messages=cut_run.cross_messages,
            speedup_vs_merged=merged_best / cut_best if cut_best else 0.0,
        )
        assert tasks.cut_weight == 0, (
            "min-cut placement must colocate the mutex clusters "
            f"(cut {tasks.cut_weight})"
        )
        assert (
            {repr(e.event) for e in cut_run.result.entries}
            == {repr(e.event) for e in merged_result.entries}
        ), "sharded mutex run settled a different event set than merged"

        if n == 256:
            assert cut_best < merged_best, (
                "the min-cut sharded N=256 mutex family is required to "
                "beat the merged single scheduler: "
                f"{cut_best:.3f}s vs {merged_best:.3f}s"
            )

            routed_best, rr_tasks, routed = sharded(n, heavy_rounds)
            out["sc7_mutex_n256_routed"] = record(
                routed_best,
                routed.result,
                cut_weight=rr_tasks.cut_weight,
                cross_messages=routed.cross_messages,
            )
            assert rr_tasks.cut_weight > 0 and routed.cross_messages > 0
            assert (
                {repr(e.event) for e in routed.result.entries}
                == {repr(e.event) for e in merged_result.entries}
            ), "routed mutex run settled a different event set than merged"

            # skewed layout: shard 0 gets 3/4 of the clusters
            skew = [
                list(range(0, 192)),
                list(range(192, 208)),
                list(range(208, 224)),
                list(range(224, 256)),
            ]
            skew_best, _tasks, skew_run = sharded(
                n, heavy_rounds, assignment=skew
            )
            out["sc7_mutex_n256_skewed"] = record(skew_best, skew_run.result)
            steal_best, _tasks, steal_run = sharded(
                n, heavy_rounds, assignment=skew, steal=True
            )
            out["sc7_mutex_n256_steal"] = record(
                steal_best, steal_run.result, steals=steal_run.steals
            )
            assert steal_run.steals > 0
            assert (
                {repr(e.event) for e in steal_run.result.entries}
                == {repr(e.event) for e in skew_run.result.entries}
            ), "stealing changed what the skewed mutex run settled"
            assert steal_best < skew_best, (
                "work stealing is required to beat the skewed layout it "
                f"rebalances: {steal_best:.3f}s vs {skew_best:.3f}s"
            )
    return out


def _pf3_run(n: int, hubs: int, watch: bool):
    """The PF3 workload: ``n`` parked guards that have already stopped
    caring about the ``hubs`` shared bases.

    Every actor's guard is ``(kill . h_1 . ... . h_m) + g_i``: all
    actors subscribe to the hub bases, but once ``~kill`` settles the
    first cube is dead and each residual only mentions the private
    ``g_i`` (which never settles, so everyone stays parked).  The
    measured phase then announces the hubs one by one: the naive
    engine re-evaluates all ``n`` parked guards per announcement, the
    watched engine skips them all.  Returns the announce-phase wall
    time and the deterministic observables.
    """
    from repro.temporal.cubes import TRUE_GUARD, literal

    kill = Event("pf3_kill")
    hub_events = [Event(f"pf3_h{j}") for j in range(hubs)]
    dead_cube = literal("box", kill)
    for h in hub_events:
        dead_cube = dead_cube & literal("box", h)
    guards = {~kill: TRUE_GUARD}
    parked = []
    for i in range(n):
        f_i = Event(f"pf3_f{i}")
        g_i = Event(f"pf3_g{i}")
        guards[f_i] = dead_cube | literal("box", g_i)
        parked.append(f_i)
    for h in hub_events:
        guards[h] = TRUE_GUARD  # fires on attempt
    sched = DistributedScheduler(
        [],
        guards=guards,
        latency=ConstantLatency(1.0),
        rng=random.Random(3),
        watch_mode=watch,
    )
    for f_i in parked:
        sched.attempt(f_i)
    sched.sim.run()
    sched.attempt(~kill)  # kills the shared cube in every residual
    sched.sim.run()
    wakes_before = sched.watch.wakes
    skips_before = sched.watch.skips
    start = time.perf_counter()
    for h in hub_events:
        sched.attempt(h)
    sched.sim.run()
    elapsed = time.perf_counter() - start
    assert len(sched.result.entries) == hubs + 1, sched.result.entries
    return {
        "seconds": elapsed,
        "settled": len(sched.result.entries),
        "messages": sched.network.stats.messages,
        "wakes": sched.watch.wakes - wakes_before,
        "skips": sched.watch.skips - skips_before,
        "timeline": [(repr(e.event), e.time) for e in sched.result.entries],
    }


def bench_watch_scaling(rounds: int) -> dict:
    """PF3: per-announcement assimilation cost vs parked-event count.

    The ROADMAP item the watch index closes is "assimilation cost
    grows linearly with the number of parked events": the naive engine
    re-evaluates every parked guard per announcement (``evals ==
    n``/announcement), the watched engine re-evaluates none (flat 0 --
    every residual dropped the hub bases), which the deterministic
    wake/skip counters witness exactly.  Wall-clock shows the same win
    as a constant-factor speedup per delivery; the announcement
    *fan-out* is deliberately identical in both engines (same
    messages, same rng stream -- that is what lets the differential
    harness fuzz drop/dup/crash schedules), so pure wall time still
    contains the linear per-message fabric cost in both columns.
    Also asserts the two engines settle the identical timeline (the
    cheap always-on shadow of tests/properties/
    test_watch_equivalence.py).
    """
    hubs = 8
    out: dict[str, dict] = {}
    speedup_at: dict[int, float] = {}
    for n in (10, 100, 1000):
        watched_best = naive_best = float("inf")
        watched = naive = None
        for _ in range(rounds):
            record = _pf3_run(n, hubs, watch=True)
            if record["seconds"] < watched_best:
                watched_best, watched = record["seconds"], record
            record = _pf3_run(n, hubs, watch=False)
            if record["seconds"] < naive_best:
                naive_best, naive = record["seconds"], record
        assert watched["timeline"] == naive["timeline"], (
            f"watched/naive timelines diverge at n={n}"
        )
        assert watched["messages"] == naive["messages"]
        # the flat-cost witness: the watched announce phase re-evaluates
        # no guard at any n, the naive one re-evaluates all n per
        # announcement
        assert watched["wakes"] == 0, watched
        assert watched["skips"] == n * hubs, watched
        assert naive["wakes"] == n * hubs, naive
        speedup_at[n] = naive["seconds"] / watched["seconds"]
        for name, record in (("watch", watched), ("naive", naive)):
            record = dict(record)
            del record["timeline"]
            record["per_announcement"] = record["seconds"] / hubs
            record["evals_per_announcement"] = record["wakes"] // hubs
            out[f"pf3_{name}_n{n}"] = record
    # the speedup must be real where it matters: at 100x the parked
    # population the watched engine wins clearly on wall clock too
    assert speedup_at[1000] > 1.5, (
        "watched announce phase must beat naive at n=1000: "
        f"speedups {speedup_at}"
    )
    return out


def _supports_compiled() -> bool:
    params = inspect.signature(DistributedScheduler.__init__).parameters
    return "compiled_guards" in params


def bench_compiled_eval(evals: int, rounds: int) -> dict:
    """PF4 micro: per-announcement guard-eval cost, cube vs compiled.

    A single-cube guard over ``n`` bases is settled one base per
    announcement.  The cube engine pays ``simplify_under`` per
    announcement -- even memo-warm, its key build sorts the whole
    knowledge map (``O(|K| log |K|)``, |K| growing to n).  The
    compiled cursor follows one interned edge per announcement plus
    cached assimilate/verdict pointer reads -- flat O(1) dict probes
    regardless of fan-in.  Both loops are timed warm (the second
    ``_best_of`` round onward reuses memo entries / interned edges),
    which is the steady state the scheduler actually runs in.
    """
    from repro.temporal.compiled import CompiledGuardEngine
    from repro.temporal.cubes import E_OCC, TRUE_GUARD, literal

    out: dict[str, dict] = {}
    speedup_at: dict[int, float] = {}
    for n in (10, 100):
        bases = [Event(f"pf4_b{i}") for i in range(n)]
        g = TRUE_GUARD
        for b in bases:
            g = g & literal("box", b)
        reps = max(1, evals // n)
        announcements = reps * n

        def cube_loop():
            fired = 0
            for _ in range(reps):
                knowledge = {}
                residual = g
                for base in bases:
                    knowledge[base] = E_OCC
                    residual = residual.simplify_under(knowledge)
                    if residual.is_true:
                        fired += 1
            return fired

        seconds, fired = _best_of(cube_loop, rounds)
        out[f"pf4_eval_cube_n{n}"] = {
            "seconds": seconds,
            "announcements": announcements,
            "per_announcement": seconds / announcements,
            "evals_per_second": announcements / seconds if seconds else 0.0,
            "literals": n,
        }

        engine = CompiledGuardEngine()

        def compiled_loop():
            fired = 0
            for _ in range(reps):
                cursor = engine.cursor(g)
                for base in bases:
                    cursor.learn(base, E_OCC)
                    cursor.assimilate()
                    if cursor.verdict() == "fire":
                        fired += 1
            return fired

        cseconds, cfired = _best_of(compiled_loop, rounds)
        # both engines fire exactly once per rep, on the last base
        assert fired == cfired == reps, (fired, cfired, reps)
        speedup = (
            (seconds / announcements) / (cseconds / announcements)
            if cseconds
            else 0.0
        )
        speedup_at[n] = speedup
        out[f"pf4_eval_compiled_n{n}"] = {
            "seconds": cseconds,
            "announcements": announcements,
            "per_announcement": cseconds / announcements,
            "evals_per_second": announcements / cseconds if cseconds else 0.0,
            "literals": n,
            "speedup_vs_cube": speedup,
        }
    assert speedup_at[100] >= 3.0, (
        "compiled guard evaluation is required to be >= 3x cheaper per "
        "announcement than cube simplify_under at fan-in 100; measured "
        f"{speedup_at[100]:.1f}x (speedups {speedup_at})"
    )
    return out


def _pf4_run(n: int, hubs: int, watch: bool, compiled, engine=None) -> dict:
    """The PF4 ablation workload: ``2n`` parked actors that dropped
    the hub bases (the watch index's win -- their wake sets are stable,
    so skipping them is churn-free) plus a hot frontier of ``n // 2``
    coupled actors whose guards keep every hub relevant (the compiled
    automaton's win -- their residuals shrink on every announcement,
    which is exactly where ``simplify_under`` is expensive and where
    watching alone cannot help).

    Per hub announcement the cube engine re-evaluates every unsettled
    guard with ``simplify_under``; watching skips the parked
    population; compilation turns each remaining re-evaluation into
    O(1) edge hops; watch+compiled does the least work of all four
    arms.  The announcement fan-out is identical in every arm (same
    messages, same rng stream), so all four settle the same timeline.
    """
    from repro.temporal.cubes import TRUE_GUARD, literal

    kill = Event("pf4_kill")
    hub_events = [Event(f"pf4_h{j}") for j in range(hubs)]
    dead_cube = literal("box", kill)
    hub_cube = TRUE_GUARD
    for h in hub_events:
        dead_cube = dead_cube & literal("box", h)
        hub_cube = hub_cube & literal("box", h)
    guards = {~kill: TRUE_GUARD}
    waiting = []
    for i in range(2 * n):
        f_i = Event(f"pf4_f{i}")  # parked: ~kill dissolves its hub cube
        guards[f_i] = dead_cube | literal("box", Event(f"pf4_g{i}"))
        waiting.append(f_i)
    for i in range(max(1, n // 2)):
        c_i = Event(f"pf4_c{i}")  # coupled: every hub stays relevant
        guards[c_i] = hub_cube & literal("box", Event(f"pf4_p{i}"))
        waiting.append(c_i)
    for h in hub_events:
        guards[h] = TRUE_GUARD  # fires on attempt
    kwargs = {"watch_mode": watch}
    if compiled:
        # a shared engine keeps the automata interned across rounds --
        # the steady state the cube arms get for free from the
        # process-wide simplify_under memo table
        kwargs["compiled_guards"] = engine if engine is not None else True
    sched = DistributedScheduler(
        [],
        guards=guards,
        latency=ConstantLatency(1.0),
        rng=random.Random(3),
        **kwargs,
    )
    for ev in waiting:
        sched.attempt(ev)
    sched.sim.run()
    sched.attempt(~kill)  # parks the f_i residuals on their private base
    sched.sim.run()
    wakes_before = sched.watch.wakes
    skips_before = sched.watch.skips
    hops_before = sched.compiled.counts()["hops"] if compiled else 0
    # the measured phase is a few ms; a collection triggered by an
    # earlier workload's garbage landing inside it would swamp the
    # arm-to-arm margins
    gc.collect()
    start = time.perf_counter()
    for h in hub_events:
        sched.attempt(h)
    sched.sim.run()
    elapsed = time.perf_counter() - start
    assert len(sched.result.entries) == hubs + 1, sched.result.entries
    record = {
        "seconds": elapsed,
        "settled": len(sched.result.entries),
        "messages": sched.network.stats.messages,
        "wakes": sched.watch.wakes - wakes_before,
        "skips": sched.watch.skips - skips_before,
        "timeline": [(repr(e.event), e.time) for e in sched.result.entries],
    }
    if compiled:
        record["hops"] = sched.compiled.counts()["hops"] - hops_before
        assert record["hops"] > 0, record
    return record


def bench_compiled_ablation(rounds: int) -> dict:
    """PF4: the four-way cube / watch / compiled / watch+compiled
    ablation on the mixed parked+coupled workload of :func:`_pf4_run`.

    The deterministic witnesses: all four arms settle the identical
    timeline with identical message counts (receiver-side design --
    that is what lets the differential harness fuzz fault schedules
    across arms), the watch arms re-evaluate strictly fewer guards,
    and the compiled arms report automaton edge hops.  On wall clock,
    watch+compiled is required to be the best arm at n=100.
    """
    from repro.temporal.compiled import CompiledGuardEngine

    # the best-arm assertion compares ~20% wall-clock margins, so keep
    # enough repetitions for a stable minimum even in --quick mode
    rounds = max(rounds, 5)
    hubs = 8
    arms = (
        ("cube", False, False),
        ("watch", True, False),
        ("compiled", False, True),
        ("watch_compiled", True, True),
    )
    out: dict[str, dict] = {}
    for n in (10, 100):
        # one engine per size: both compiled arms (and every round)
        # share the interned automata, so best-of measures the warm
        # steady state on all four arms
        engine = CompiledGuardEngine()
        best: dict[str, dict] = {}
        for name, watch, compiled in arms:
            # one discarded warm-up run per arm: the timed rounds then
            # walk fully interned automata, which also pins the hop
            # counter (a cold round books expansions instead of hops)
            _pf4_run(n, hubs, watch=watch, compiled=compiled, engine=engine)
            for _ in range(rounds):
                record = _pf4_run(
                    n, hubs, watch=watch, compiled=compiled, engine=engine
                )
                if (
                    name not in best
                    or record["seconds"] < best[name]["seconds"]
                ):
                    best[name] = record
        reference = best["cube"]
        for name, record in best.items():
            assert record["timeline"] == reference["timeline"], (
                f"pf4 arm {name} settled a different timeline at n={n}"
            )
            assert record["messages"] == reference["messages"], (
                f"pf4 arm {name} changed the message count at n={n}"
            )
        # watching must skip the parked population in both watch arms
        for name in ("watch", "watch_compiled"):
            assert best[name]["wakes"] < reference["wakes"], (n, name)
            assert best[name]["skips"] > 0, (n, name)
        if n == 100:
            others = {
                name: record["seconds"]
                for name, record in best.items()
                if name != "watch_compiled"
            }
            assert best["watch_compiled"]["seconds"] < min(others.values()), (
                "watch+compiled is required to be the best PF4 arm at "
                f"n=100: {best['watch_compiled']['seconds']:.4f}s vs "
                f"{others}"
            )
        for name, record in best.items():
            record = dict(record)
            del record["timeline"]
            record["per_announcement"] = record["seconds"] / hubs
            record["evals_per_announcement"] = record["wakes"] // hubs
            out[f"pf4_{name}_n{n}"] = record
    return out


def bench_chaos(rounds: int) -> dict:
    from repro.workloads.scenarios import make_travel_booking

    scenario = make_travel_booking("failure")
    plan = FaultPlan.of([SiteCrash("airline", at=2.0, restart_at=10.0)])

    def run():
        sched = DistributedScheduler(
            scenario.workflow.dependencies,
            sites=scenario.workflow.sites,
            attributes=scenario.workflow.attributes,
            rng=random.Random(7),
            drop_probability=0.3,
            duplicate_probability=0.3,
            reliable=True,
            fault_plan=plan,
        )
        result = sched.run(scenario.scripts, verify=False)
        return result, sched

    seconds, (result, sched) = _best_of(run, rounds)
    return {
        "sc5_chaos": {
            "seconds": seconds,
            "makespan": result.makespan,
            "messages": result.messages,
            "settled": len(result.entries),
            "retransmits": sched.network.stats.retransmits,
        }
    }


def collect(quick: bool) -> dict:
    rounds = 2 if quick else 5
    evals = 2_000 if quick else 20_000
    calibration = calibrate(rounds=3)
    workloads: dict[str, dict] = {}
    workloads.update(bench_synthesis(rounds))
    workloads.update(bench_guard_eval(evals, rounds))
    workloads.update(bench_end_to_end(rounds))
    if _supports_sharding():
        workloads.update(bench_template_synthesis(rounds))
        workloads.update(bench_scale_out(rounds))
    if _supports_cross_shard():
        workloads.update(bench_scale_mutex(rounds))
    if _supports_watching():
        workloads.update(bench_watch_scaling(rounds))
    if _supports_compiled():
        workloads.update(bench_compiled_eval(evals, rounds))
        workloads.update(bench_compiled_ablation(rounds))
    workloads.update(bench_chaos(rounds))
    for record in workloads.values():
        if "seconds" in record:
            record["normalized"] = record["seconds"] / calibration
    features = {
        "batching": _supports_batching(),
        "sharding": _supports_sharding(),
        "watching": _supports_watching(),
        "cross_shard": _supports_cross_shard(),
        "compiled": _supports_compiled(),
    }
    try:
        from repro.algebra.expressions import intern_stats  # noqa: F401

        features["interning"] = True
    except ImportError:
        features["interning"] = False
    return {
        "schema": SCHEMA,
        "quick": quick,
        "calibration_seconds": calibration,
        "workloads": workloads,
        "features": features,
    }


# Absolute slack added on top of the relative tolerance, in normalized
# units (seconds / calibration spin).  0.02 normalized units is ~0.5 ms
# at the recorded calibration: enough that sub-millisecond workloads
# (pf3_watch_n10, synthesis_cold_k2, ...) don't flap the gate on
# scheduler jitter alone, and negligible (~1%) for every workload whose
# timing the gate actually protects.
ABS_SLACK = 0.02


def check_regression(current: dict, baseline: dict, tolerance: float) -> list[str]:
    """Normalized-time and exact-observable comparison; returns failures."""
    failures: list[str] = []
    base_workloads = baseline.get("workloads", {})
    for name, base in sorted(base_workloads.items()):
        now = current["workloads"].get(name)
        if now is None:
            failures.append(f"{name}: workload missing from current run")
            continue
        base_norm = base.get("normalized")
        now_norm = now.get("normalized")
        if (
            base_norm
            and now_norm
            and now_norm > base_norm * (1.0 + tolerance) + ABS_SLACK
        ):
            failures.append(
                f"{name}: normalized time {now_norm:.3f} exceeds baseline "
                f"{base_norm:.3f} by more than {tolerance:.0%}"
            )
        for field in EXACT_FIELDS:
            if field in base and field in now and base[field] != now[field]:
                failures.append(
                    f"{name}.{field}: {now[field]!r} != baseline "
                    f"{base[field]!r} (semantics drift)"
                )
    return failures


def compare_table(current: dict, before: dict) -> str:
    """The PF1 before/after table (markdown) with speedups."""
    lines = [
        "| workload | before (s) | after (s) | speedup |",
        "|---|---|---|---|",
    ]
    for name, base in sorted(before.get("workloads", {}).items()):
        now = current["workloads"].get(name)
        if now is None or "seconds" not in base or "seconds" not in now:
            continue
        speedup = base["seconds"] / now["seconds"] if now["seconds"] else 0.0
        lines.append(
            f"| {name} | {base['seconds']:.6f} | {now['seconds']:.6f} "
            f"| {speedup:.2f}x |"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="fewer repetitions/evaluations (CI smoke); workload sizes "
        "are unchanged so deterministic observables stay comparable",
    )
    parser.add_argument("--output", default="BENCH_PERF.json")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="fail (exit 1) on >tolerance normalized-time regression or "
        "any deterministic-observable drift against this JSON",
    )
    parser.add_argument("--tolerance", type=float, default=0.25)
    parser.add_argument(
        "--compare", metavar="FILE",
        help="print a before/after speedup table against this JSON",
    )
    args = parser.parse_args(argv)

    report = collect(quick=args.quick)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    for name, record in sorted(report["workloads"].items()):
        if "seconds" in record:
            print(f"  {name}: {record['seconds']:.6f}s "
                  f"(normalized {record['normalized']:.3f})")

    status = 0
    if args.compare:
        with open(args.compare, encoding="utf-8") as handle:
            before = json.load(handle)
        print()
        print(compare_table(report, before))
    if args.baseline:
        with open(args.baseline, encoding="utf-8") as handle:
            baseline = json.load(handle)
        failures = check_regression(report, baseline, args.tolerance)
        if failures:
            print(f"\nPERF REGRESSION vs {args.baseline}:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            status = 1
        else:
            print(f"\nno regression vs {args.baseline} "
                  f"(tolerance {args.tolerance:.0%})")
    return status


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiments X4/X12: the travel-booking workflow, plain and parametrized.

Example 4's three dependencies drive both outcome paths; Example 12
re-keys the workflow by customer id, and instances must not interfere.
"""

from repro.algebra.symbols import Event, Variable
from repro.params.workflows import ParametrizedWorkflow
from repro.scheduler import CentralizedScheduler, DistributedScheduler
from repro.workloads.scenarios import make_travel_booking

from benchmarks.helpers import run_scenario


def test_bench_travel_success_distributed(benchmark):
    result = benchmark(
        lambda: run_scenario(make_travel_booking("success"), DistributedScheduler)
    )
    assert result.ok
    names = {en.event.name for en in result.entries if not en.event.negated}
    assert names == {"s_buy", "s_book", "c_book", "c_buy"}
    order = [en.event.name for en in result.entries]
    # dependency (2): commit of buy strictly after commit of book
    assert order.index("c_book") < order.index("c_buy")


def test_bench_travel_failure_distributed(benchmark):
    result = benchmark(
        lambda: run_scenario(make_travel_booking("failure"), DistributedScheduler)
    )
    assert result.ok
    names = {en.event.name for en in result.entries if not en.event.negated}
    # compensation ran; the non-compensatable buy never committed
    assert "s_cancel" in names
    assert "c_buy" not in names


def test_bench_travel_success_centralized(benchmark):
    result = benchmark(
        lambda: run_scenario(make_travel_booking("success"), CentralizedScheduler)
    )
    assert result.ok
    names = {en.event.name for en in result.entries if not en.event.negated}
    assert names == {"s_buy", "s_book", "c_book", "c_buy"}


def test_bench_example12_template_instantiation(benchmark):
    template = ParametrizedWorkflow("travel")
    template.add("~s_buy[cid] + s_book[cid]")
    template.add("~c_buy[cid] + c_book[cid] . c_buy[cid]")
    template.add("~c_book[cid] + c_buy[cid] + s_cancel[cid]")

    def instantiate():
        return [template.instantiate(cid=f"c{i}") for i in range(20)]

    instances = benchmark(instantiate)
    assert len(instances) == 20
    assert not (instances[0].bases() & instances[1].bases())
    cid = Variable("cid")
    assert template.variables() == frozenset({cid})
    first = instances[0].dependencies[0]
    assert Event("s_book", params=("c0",)) in first.bases()

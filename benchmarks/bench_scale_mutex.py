"""Experiment SC7: the Example 13 mutex family across shards.

SC6 (bench_scale_schedulers / bench_scale_latency) shards *independent*
instances; here every cluster of critical-section tasks is coupled by
cross-instance mutex dependencies, so the sharded runs exercise the
cross-shard machinery end to end: constraint-aware min-cut placement
(cut 0, no routing), round-robin placement with announcements routed
over the exactly-once gateway channel, and work-stealing rebalancing
of a deliberately skewed layout.  Absolute timings are the perf
suite's job (``perf_suite.py`` gates the N=256 speedups); this bench
pins the *shape* at a CI-friendly size: every variant settles exactly
the merged baseline's event set.
"""

import random

import pytest

from repro.scale import instance_spec, plan_shards, run_sharded
from repro.scheduler import DistributedScheduler
from repro.workloads.scenarios import make_mutex_family

N = 16
CLUSTER = 4
SHARDS = 4


def family():
    return make_mutex_family(N, cluster=CLUSTER)


def merged_baseline():
    workflow, scripts = family().merged()
    sched = DistributedScheduler(
        workflow.dependencies,
        sites=workflow.sites,
        attributes=workflow.attributes,
        rng=random.Random(9),
    )
    result = sched.run(scripts)
    assert result.ok, result.violations
    return result


def sharded_run(steal=False, **plan_kwargs):
    fam = family()
    instances = [
        instance_spec(suffix, scripts) for suffix, scripts in fam.instances
    ]
    tasks = plan_shards(
        fam.template,
        instances,
        SHARDS,
        seed=1,
        cross_deps=fam.cross_dependencies,
        **plan_kwargs,
    )
    return tasks, run_sharded(tasks, workers=1, steal=steal)


def settled(result):
    return sorted(repr(entry.event) for entry in result.entries)


@pytest.fixture(scope="module")
def baseline():
    return merged_baseline()


def test_bench_mutex_merged(benchmark):
    result = benchmark.pedantic(merged_baseline, rounds=3, iterations=1)
    assert len(result.entries) == 2 * N


def test_bench_mutex_min_cut(benchmark, baseline):
    tasks, run = benchmark.pedantic(
        lambda: sharded_run(placement="min_cut"), rounds=3, iterations=1
    )
    # clusters colocate: nothing crosses the cut, nothing routes
    assert tasks.cut_weight == 0
    assert run.cross_messages == 0
    assert run.result.ok, run.result.violations
    assert settled(run.result) == settled(baseline)


def test_bench_mutex_round_robin_routed(benchmark, baseline):
    tasks, run = benchmark.pedantic(sharded_run, rounds=3, iterations=1)
    # round-robin splits every cluster: the coupling routes instead
    assert tasks.cut_weight > 0
    assert run.cross_messages > 0
    assert run.result.ok, run.result.violations
    assert settled(run.result) == settled(baseline)


def test_bench_mutex_skewed_with_stealing(benchmark, baseline):
    # shard 0 gets 3/4 of the clusters; stealing rebalances it
    skew = [list(range(0, 12)), [12, 13, 14, 15], [], []]
    tasks, run = benchmark.pedantic(
        lambda: sharded_run(assignment=skew, steal=True),
        rounds=3,
        iterations=1,
    )
    assert run.steals > 0
    assert run.result.ok, run.result.violations
    assert settled(run.result) == settled(baseline)

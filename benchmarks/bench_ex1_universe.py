"""Experiment X1: regenerate Example 1's universe and denotations."""

from repro.algebra.denotation import denotation
from repro.algebra.parser import parse
from repro.algebra.symbols import Event
from repro.algebra.traces import Trace, universe, universe_size

E, F = Event("e"), Event("f")


def test_bench_example1_universe(benchmark):
    traces = benchmark(lambda: frozenset(universe([E, F])))
    # 1 empty + 4 singletons + 4 sign-pairs x 2 orders
    assert len(traces) == 13 == universe_size(2)
    assert Trace([]) in traces
    for expected in ("<e>", "<f>", "<~e>", "<~f>", "<e f>", "<f e>",
                     "<e ~f>", "<~f e>", "<~e f>", "<f ~e>", "<~e ~f>",
                     "<~f ~e>"):
        assert any(repr(t) == expected for t in traces), expected


def test_bench_example1_denotations(benchmark):
    def compute():
        return (
            denotation(parse("0"), [E, F]),
            denotation(parse("T"), [E, F]),
            denotation(parse("e"), [E, F]),
            denotation(parse("e . f"), [E, F]),
            denotation(parse("e + ~e"), [E, F]),
            denotation(parse("e | ~e"), [E, F]),
        )

    zero, top, e_atoms, seq, choice, conj = benchmark(compute)
    assert zero == frozenset()
    assert len(top) == 13
    assert {repr(t) for t in e_atoms} == {
        "<e>", "<e f>", "<f e>", "<e ~f>", "<~f e>"
    }
    assert seq == frozenset({Trace([E, F])})
    assert choice != top       # [[e + ~e]] != U_E
    assert conj == frozenset() # [[e | ~e]] = 0
